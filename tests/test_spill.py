"""Tests for the out-of-core spill plane of the columnar shuffle.

The contract under test is the one ``docs/scale.md`` promises: setting
``spill_dir``/``memory_watermark_bytes`` changes *where sealed chunks
wait* between send and delivery — never what the run computes.  A run
that spills every chunk (watermark = 1 byte) must be bit-identical to
the unbounded in-memory run: same count, same instances, same ledger
summary, on every backend and both shuffle modes.

Also covered: the spill observability surface (``chunk_spill``/
``chunk_map`` trace events, ledger counters, the straggler report
line), knob validation, cleanup of spill files, and the mid-run
deletion failure mode (a vanished spill file must surface as a clean
:class:`~repro.exceptions.EngineError`).
"""

import os

import numpy as np
import pytest

from repro.bsp.spill import SpillManager, SpillRef
from repro.core import GpsiColumns, PSgL
from repro.exceptions import EngineError
from repro.graph.generators import erdos_renyi, rmat
from repro.obs import Tracer, straggler_report
from repro.pattern import paper_patterns
from repro.runtime import ProcessExecutor

GRAPH = erdos_renyi(30, 0.22, seed=11)
PATTERN = paper_patterns()["PG2"]


def run_listing(backend, spill_dir=None, watermark=None, shuffle="strict", **kwargs):
    tracer = Tracer()
    result = PSgL(
        GRAPH,
        num_workers=4,
        strategy="WA,0.5",
        seed=3,
        backend=backend,
        wire="columnar",
        shuffle=shuffle,
        spill_dir=None if spill_dir is None else str(spill_dir),
        memory_watermark_bytes=watermark,
        trace=tracer,
        **kwargs,
    ).run(PATTERN, collect_instances=True)
    return result, tracer


def assert_bit_parity(reference, other):
    assert other.count == reference.count
    assert sorted(other.instances) == sorted(reference.instances)
    assert other.ledger.summary() == reference.ledger.summary()


@pytest.fixture(scope="module")
def reference():
    result, _ = run_listing("serial")
    return result


class TestForcedSpillParity:
    """watermark=1 byte: every sealed chunk spills, results unchanged."""

    @pytest.mark.parametrize("shuffle", ["strict", "pipelined"])
    def test_serial(self, tmp_path, reference, shuffle):
        result, tracer = run_listing(
            "serial", tmp_path, 1, shuffle=shuffle
        )
        assert_bit_parity(reference, result)
        assert result.ledger.spill_chunks >= 1
        assert tracer.by_kind("chunk_spill")

    @pytest.mark.parametrize("shuffle", ["strict", "pipelined"])
    def test_thread(self, tmp_path, reference, shuffle):
        result, _ = run_listing(
            "thread", tmp_path, 1, shuffle=shuffle, procs=3
        )
        assert_bit_parity(reference, result)
        assert result.ledger.spill_chunks >= 1

    def test_process(self, tmp_path, reference):
        result, _ = run_listing(
            "process", tmp_path, 1, shuffle="pipelined", procs=2
        )
        assert_bit_parity(reference, result)
        assert result.ledger.spill_chunks >= 1

    def test_process_spawn(self, tmp_path, reference):
        executor = ProcessExecutor(procs=2, start_method="spawn")
        result, _ = run_listing(executor, tmp_path, 1, shuffle="pipelined")
        assert_bit_parity(reference, result)
        assert result.ledger.spill_chunks >= 1

    def test_intermediate_watermark(self, tmp_path, reference):
        """A watermark between 0 and the peak spills some chunks but not
        all — the partial regime must be as exact as the total one."""
        result, _ = run_listing("serial", tmp_path, 64 * 1024)
        assert_bit_parity(reference, result)


class TestSpillObservability:
    def test_events_and_ledger_agree(self, tmp_path):
        result, tracer = run_listing("serial", tmp_path, 1)
        spills = tracer.by_kind("chunk_spill")
        maps = tracer.by_kind("chunk_map")
        assert len(spills) == result.ledger.spill_chunks
        assert len(maps) == result.ledger.spill_chunks_mapped
        # every spilled chunk is re-mapped exactly once
        assert len(maps) == len(spills)
        assert result.ledger.spill_bytes == sum(
            e.data["bytes"] for e in spills
        )
        assert result.ledger.spill_bytes_mapped == result.ledger.spill_bytes

    def test_summary_excludes_spill_counters(self, tmp_path, reference):
        """summary() must not leak spill volume, or parity comparisons
        between spilled and in-memory runs would break by design."""
        result, _ = run_listing("serial", tmp_path, 1)
        assert result.ledger.spill_chunks > 0
        assert result.ledger.summary() == reference.ledger.summary()

    def test_straggler_report_mentions_spill(self, tmp_path):
        _, tracer = run_listing("serial", tmp_path, 1)
        report = straggler_report(tracer)
        assert "spill plane" in report
        assert "re-mapped at delivery" in report

    def test_no_spill_no_events(self, tmp_path):
        result, tracer = run_listing("serial", tmp_path, 1 << 40)
        assert result.ledger.spill_chunks == 0
        assert not tracer.by_kind("chunk_spill")
        report = straggler_report(tracer)
        assert "spill plane" not in report

    def test_barrier_events_carry_deltas(self, tmp_path):
        _, tracer = run_listing("serial", tmp_path, 1)
        barrier_totals = sum(
            e.data.get("spill_chunks", 0) for e in tracer.by_kind("barrier")
        )
        assert barrier_totals == len(tracer.by_kind("chunk_spill"))

    def test_spill_dir_cleaned_up(self, tmp_path):
        run_listing("serial", tmp_path, 1)
        # the private run directory is removed; the parent stays
        assert list(tmp_path.iterdir()) == []


class TestKnobValidation:
    def test_spill_dir_alone_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="both or neither"):
            PSgL(GRAPH, wire="columnar", spill_dir=str(tmp_path)).run(PATTERN)

    def test_watermark_alone_rejected(self):
        with pytest.raises(EngineError, match="both or neither"):
            PSgL(GRAPH, wire="columnar", memory_watermark_bytes=1).run(PATTERN)

    def test_object_wire_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="columnar"):
            PSgL(
                GRAPH,
                wire="object",
                spill_dir=str(tmp_path),
                memory_watermark_bytes=1,
            ).run(PATTERN)

    def test_non_positive_watermark_rejected(self, tmp_path):
        with pytest.raises(EngineError):
            PSgL(
                GRAPH,
                wire="columnar",
                spill_dir=str(tmp_path),
                memory_watermark_bytes=0,
            ).run(PATTERN)


def _sample_columns(n=8, k=4):
    mapping = np.arange(n * k, dtype=np.int64).reshape(n, k)
    black = np.ones((n, 1), dtype=np.uint32)
    next_vertex = np.full(n, 2, dtype=np.uint8)
    return GpsiColumns(mapping, black, next_vertex)


class TestSpillFileFailures:
    """Disk-level failures surface as EngineError, not numpy garbage."""

    def test_deleted_spill_file_is_engine_error(self, tmp_path):
        manager = SpillManager(str(tmp_path), watermark_bytes=1)
        try:
            spill = manager.for_superstep(0)
            columns = _sample_columns()
            dest = np.arange(len(columns), dtype=np.int64)
            ref = spill.spill(0, 0, dest, columns)
            assert isinstance(ref, SpillRef)
            os.unlink(spill.path)
            with pytest.raises(EngineError, match="vanished mid-run"):
                spill.load(0, 0, ref)
        finally:
            manager.close()

    def test_truncated_spill_file_is_engine_error(self, tmp_path):
        manager = SpillManager(str(tmp_path), watermark_bytes=1)
        try:
            spill = manager.for_superstep(0)
            columns = _sample_columns()
            dest = np.arange(len(columns), dtype=np.int64)
            ref = spill.spill(0, 0, dest, columns)
            spill.close()  # flush the write handle; the file stays
            with open(spill.path, "r+b") as fh:
                fh.truncate(ref.nbytes // 2)
            with pytest.raises(EngineError, match="truncated mid-run"):
                spill.load(0, 0, ref)
        finally:
            manager.close()

    def test_roundtrip_is_exact(self, tmp_path):
        manager = SpillManager(str(tmp_path), watermark_bytes=1)
        try:
            spill = manager.for_superstep(0)
            columns = _sample_columns()
            dest = np.arange(len(columns), dtype=np.int64) * 3
            ref = spill.spill(1, 2, dest, columns)
            got_dest, got_columns = spill.load(1, 2, ref)
            np.testing.assert_array_equal(got_dest, dest)
            np.testing.assert_array_equal(got_columns.mapping, columns.mapping)
            np.testing.assert_array_equal(got_columns.black, columns.black)
            np.testing.assert_array_equal(
                got_columns.next_vertex, columns.next_vertex
            )
        finally:
            manager.close()


@pytest.mark.skipif(
    not os.environ.get("RUN_SCALE18"),
    reason="scale-18 out-of-core sweep is minutes of wall time; "
    "set RUN_SCALE18=1 to run (CI smoke covers a smaller scale)",
)
def test_scale18_out_of_core_parity(tmp_path):
    """ISSUE acceptance: PG2 on R-MAT scale 18 via .csrbin + mmap with a
    sub-footprint watermark spills and still matches in-memory."""
    from repro.graph import load_mapped, write_edge_list
    from repro.graph.binfmt import convert_edge_list

    graph = rmat(18, avg_degree=8.0, seed=1)
    src = tmp_path / "edges.txt"
    write_edge_list(graph, src)
    convert_edge_list(src, tmp_path / "g.csrbin")
    mapped = load_mapped(tmp_path / "g.csrbin")
    pattern = paper_patterns()["PG2"]
    ref = PSgL(
        mapped, num_workers=4, seed=3, wire="columnar"
    ).run(pattern)
    spilled = PSgL(
        mapped,
        num_workers=4,
        seed=3,
        wire="columnar",
        shuffle="pipelined",
        spill_dir=str(tmp_path / "spill"),
        memory_watermark_bytes=1 << 20,
    ).run(pattern)
    assert spilled.count == ref.count
    assert spilled.ledger.summary() == ref.ledger.summary()
    assert spilled.ledger.spill_chunks >= 1
