"""Unit tests for automorphism detection and symmetry breaking."""

from repro.pattern import (
    PatternGraph,
    automorphisms,
    break_automorphisms,
    count_order_preserving_automorphisms,
    orbits,
    paper_patterns,
    stabilizer,
)


class TestAutomorphisms:
    def test_triangle_group_size(self):
        p = PatternGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert len(automorphisms(p)) == 6  # S3

    def test_square_group_size(self):
        p = PatternGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert len(automorphisms(p)) == 8  # dihedral D4

    def test_clique4_group_size(self):
        p = PatternGraph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert len(automorphisms(p)) == 24  # S4

    def test_diamond_group_size(self):
        p = PatternGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
        assert len(automorphisms(p)) == 4

    def test_house_group_size(self):
        from repro.pattern import house

        assert len(automorphisms(house())) == 2

    def test_path_group_size(self):
        p = PatternGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert len(automorphisms(p)) == 2  # identity + reversal

    def test_asymmetric_pattern(self):
        # Triangle with tails of different lengths on two of its corners:
        # every vertex is structurally distinguished, so only the identity.
        p = PatternGraph(6, [(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (4, 5)])
        assert len(automorphisms(p)) == 1

    def test_identity_always_present(self):
        for pattern in paper_patterns().values():
            assert tuple(range(pattern.num_vertices)) in automorphisms(pattern)

    def test_every_automorphism_preserves_edges(self):
        p = PatternGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        for perm in automorphisms(p):
            for u, v in p.edges():
                assert p.has_edge(perm[u], perm[v])


class TestOrbitsAndStabilizer:
    def test_square_single_orbit(self):
        p = PatternGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        obs = orbits(automorphisms(p), 4)
        assert len(obs) == 1
        assert obs[0] == frozenset({0, 1, 2, 3})

    def test_diamond_two_orbits(self):
        p = PatternGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
        obs = {frozenset(o) for o in orbits(automorphisms(p), 4)}
        assert obs == {frozenset({0, 2}), frozenset({1, 3})}

    def test_stabilizer_of_square_corner(self):
        p = PatternGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        stab = stabilizer(automorphisms(p), 0)
        assert len(stab) == 2
        assert all(perm[0] == 0 for perm in stab)


class TestBreaking:
    def test_catalog_orders_are_what_the_breaker_derives(self):
        """Figure 4's partial orders must come out of the algorithm."""
        for name, pattern in paper_patterns().items():
            derived = break_automorphisms(pattern.with_partial_order(()))
            assert derived.partial_order == pattern.partial_order, name

    def test_breaking_leaves_only_identity(self):
        for pattern in paper_patterns().values():
            assert count_order_preserving_automorphisms(pattern) == 1

    def test_unbroken_pattern_preserves_whole_group(self):
        p = PatternGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert count_order_preserving_automorphisms(p) == 6

    def test_breaking_asymmetric_pattern_adds_nothing(self):
        p = PatternGraph(6, [(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (4, 5)])
        assert break_automorphisms(p).partial_order == frozenset()

    def test_broken_cycle5(self):
        p = PatternGraph(5, [(i, (i + 1) % 5) for i in range(5)])
        broken = break_automorphisms(p)
        assert count_order_preserving_automorphisms(broken) == 1

    def test_broken_clique5_full_order(self):
        p = PatternGraph(5, [(i, j) for i in range(5) for j in range(i + 1, 5)])
        broken = break_automorphisms(p)
        # S5 needs the complete order: C(5,2) pairs.
        assert len(broken.partial_order) == 10

    def test_heuristic2_prefers_high_degree_orbit(self):
        # Diamond: degree-3 orbit {1,3} must be broken before {0,2},
        # pinning vertex 1 (so (1,3) is a constraint).
        p = PatternGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
        broken = break_automorphisms(p)
        assert (1, 3) in broken.partial_order
        assert (0, 2) in broken.partial_order

    def test_counts_collapse_by_group_order(self):
        """On a data graph, instance multiplicity without breaking equals
        |Aut| times the broken count."""
        from repro.baselines.centralized import count_instances
        from repro.graph import complete_graph

        g = complete_graph(6)
        raw = PatternGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        broken = break_automorphisms(raw)
        assert count_instances(g, raw) == 8 * count_instances(g, broken)
