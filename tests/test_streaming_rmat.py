"""Tests for the R-MAT generator and the streaming estimators."""

import pytest

from repro.baselines import (
    count_triangles,
    doulion_estimate,
    edge_sampling_triangles,
    total_wedges,
    wedge_sampling_error_bound,
    wedge_sampling_triangles,
)
from repro.exceptions import GraphError
from repro.graph import Graph, complete_graph, grid_graph, rmat, star_graph


class TestRmat:
    def test_size(self):
        g = rmat(8, avg_degree=6, seed=1)
        assert g.num_vertices == 256
        assert 0 < g.num_edges <= 6 * 256 // 2

    def test_deterministic(self):
        assert rmat(7, seed=5) == rmat(7, seed=5)

    def test_seeds_differ(self):
        assert rmat(7, seed=1) != rmat(7, seed=2)

    def test_skewed_by_default(self):
        g = rmat(10, avg_degree=8, seed=3)
        assert g.max_degree() > 10 * (2 * g.num_edges / g.num_vertices)

    def test_uniform_parameters_flatten(self):
        skewed = rmat(10, avg_degree=8, seed=4)
        flat = rmat(10, avg_degree=8, a=0.25, b=0.25, c=0.25, seed=4)
        assert flat.max_degree() < skewed.max_degree()

    def test_invalid_scale(self):
        with pytest.raises(GraphError):
            rmat(0)
        with pytest.raises(GraphError):
            rmat(30)

    def test_invalid_probabilities(self):
        with pytest.raises(GraphError):
            rmat(5, a=0.6, b=0.3, c=0.3)


class TestWedgeSampling:
    def test_total_wedges(self):
        # star K_{1,4}: hub has C(4,2)=6 wedges, leaves none
        assert total_wedges(star_graph(5)) == 6
        # triangle: 3 wedges
        assert total_wedges(complete_graph(3)) == 3

    def test_exact_on_complete_graph(self):
        # every wedge of K_n closes, so any sample gives the exact count
        g = complete_graph(8)
        est = wedge_sampling_triangles(g, samples=500, seed=1)
        assert est.estimate == pytest.approx(count_triangles(g))

    def test_zero_on_triangle_free(self):
        est = wedge_sampling_triangles(grid_graph(5, 5), samples=2000, seed=2)
        assert est.estimate == 0.0

    def test_accuracy_on_random_graph(self):
        from repro.graph import erdos_renyi

        g = erdos_renyi(400, 0.05, seed=3)
        truth = count_triangles(g)
        est = wedge_sampling_triangles(g, samples=40_000, seed=4)
        assert est.relative_error(truth) < 0.15

    def test_no_instances_available(self):
        est = wedge_sampling_triangles(complete_graph(5), samples=10)
        assert not hasattr(est, "instances")

    def test_empty_graph(self):
        est = wedge_sampling_triangles(Graph(3, []), samples=100)
        assert est.estimate == 0.0

    def test_invalid_samples(self):
        with pytest.raises(GraphError):
            wedge_sampling_triangles(complete_graph(4), samples=0)

    def test_error_bound_shrinks(self):
        assert wedge_sampling_error_bound(10_000) < wedge_sampling_error_bound(100)
        with pytest.raises(GraphError):
            wedge_sampling_error_bound(0)


class TestEdgeSampling:
    def test_p_one_is_exact(self):
        g = complete_graph(7)
        est = edge_sampling_triangles(g, p=1.0, seed=1)
        assert est.estimate == pytest.approx(count_triangles(g))

    def test_accuracy_reasonable(self):
        from repro.graph import erdos_renyi

        g = erdos_renyi(300, 0.08, seed=5)
        truth = count_triangles(g)
        est = edge_sampling_triangles(g, p=0.5, seed=6)
        assert est.relative_error(truth) < 0.5

    def test_invalid_rate(self):
        with pytest.raises(GraphError):
            edge_sampling_triangles(complete_graph(4), p=0.0)
        with pytest.raises(GraphError):
            edge_sampling_triangles(complete_graph(4), p=1.5)

    def test_doulion_alias(self):
        g = complete_graph(6)
        assert (
            doulion_estimate(g, p=0.7, seed=7).estimate
            == edge_sampling_triangles(g, p=0.7, seed=7).estimate
        )

    def test_relative_error_of_zero_truth(self):
        est = edge_sampling_triangles(grid_graph(3, 3), p=0.9, seed=8)
        assert est.relative_error(0) == 0.0
