"""Tests for repro.obs: tracer semantics, exporter round-trips,
trace/ledger parity across backends, and the straggler report."""

import json

import pytest

from repro import PSgL, Tracer, complete_graph
from repro.bsp import BSPEngine, CostLedger, VertexProgram
from repro.graph import hash_partition
from repro.graph.generators import erdos_renyi
from repro.obs import (
    NULL_TRACER,
    SCHEMA,
    NullTracer,
    TraceEvent,
    make_tracer,
    read_jsonl,
    straggler_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.pattern import triangle


class Chatter(VertexProgram):
    """Two rounds of neighbour pings with per-worker-skewed cost."""

    def compute(self, ctx, messages):
        ctx.add_cost(1.0 + ctx.worker_id + len(messages))
        if ctx.superstep < 2:
            for u in ctx.graph.neighbors(ctx.vertex):
                ctx.send(int(u), ctx.vertex)


def traced_run(backend="serial", **engine_kwargs):
    g = erdos_renyi(30, 0.25, seed=13)
    tracer = Tracer()
    engine = BSPEngine(
        g, hash_partition(30, 3), backend=backend, trace=tracer, **engine_kwargs
    )
    result = engine.run(Chatter())
    return tracer, result


class TestMakeTracer:
    def test_none_and_false_resolve_to_shared_null(self):
        assert make_tracer(None) is NULL_TRACER
        assert make_tracer(False) is NULL_TRACER

    def test_true_makes_fresh_tracer(self):
        a, b = make_tracer(True), make_tracer(True)
        assert isinstance(a, Tracer) and a is not b

    def test_instance_passthrough(self):
        tracer = Tracer()
        assert make_tracer(tracer) is tracer
        null = NullTracer()
        assert make_tracer(null) is null

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            make_tracer("yes please")

    def test_null_tracer_is_disabled_and_silent(self):
        NULL_TRACER.emit("worker", superstep=0, worker=0, cost=1.0)
        assert NULL_TRACER.enabled is False


class TestEngineTracing:
    def test_untraced_run_returns_no_trace(self):
        g = complete_graph(5)
        result = BSPEngine(g, hash_partition(5, 2)).run(Chatter())
        assert result.trace is None

    def test_event_stream_shape(self):
        tracer, result = traced_run()
        supersteps = result.ledger.num_supersteps
        assert len(tracer.by_kind("superstep")) == supersteps
        assert len(tracer.by_kind("barrier")) == supersteps
        assert len(tracer.by_kind("executor")) == 1
        jobs = tracer.by_kind("job")
        assert len(jobs) == 1 and jobs[0].data["status"] == "completed"
        assert jobs[0].data["supersteps"] == supersteps
        assert tracer.meta["backend"] == "serial"
        assert tracer.meta["num_workers"] == 3

    def test_worker_events_match_ledger_rows_exactly(self):
        tracer, result = traced_run()
        for step in result.ledger.steps:
            events = {
                e.worker: e.data
                for e in tracer.by_kind("worker")
                if e.superstep == step.superstep
            }
            for worker, cost in enumerate(step.worker_cost):
                if worker in events:
                    assert events[worker]["cost"] == cost
                    assert events[worker]["messages"] == step.worker_messages[worker]
                    assert (
                        events[worker]["compute_calls"]
                        == step.worker_compute_calls[worker]
                    )
                else:  # workers with empty batches emit no event
                    assert cost == 0.0

    def test_tracer_summary_equals_ledger_summary(self):
        tracer, result = traced_run()
        assert tracer.summary() == result.ledger.summary()

    def test_makespan_is_sum_of_per_superstep_maxima(self):
        tracer, result = traced_run()
        ledger = result.ledger
        assert ledger.makespan() == sum(s.max_cost for s in ledger.steps)
        assert tracer.summary()["makespan"] == ledger.makespan()

    def test_imbalance_is_one_on_zero_cost_run(self):
        ledger = CostLedger(4)
        ledger.begin_superstep(0)
        ledger.end_superstep(live_messages=0)
        assert ledger.imbalance() == 1.0
        tracer = Tracer()
        tracer.emit("worker", superstep=0, worker=0, cost=0.0, messages=0)
        tracer.emit("superstep", superstep=0, wall_ms=0.1)
        assert tracer.summary()["imbalance"] == 1.0

    def test_barrier_queue_depths_recorded(self):
        tracer, result = traced_run()
        barrier = tracer.by_kind("barrier")[0]
        depths = barrier.data["queue_depths"]
        assert len(depths) == 3
        assert barrier.data["max_worker_live"] == max(depths)

    def test_oom_aborted_run_still_traces_fatal_superstep(self):
        from repro.exceptions import SimulatedOOMError

        g = erdos_renyi(30, 0.25, seed=13)
        tracer = Tracer()
        engine = BSPEngine(
            g, hash_partition(30, 3), memory_budget=2, trace=tracer
        )
        with pytest.raises(SimulatedOOMError):
            engine.run(Chatter())
        assert tracer.by_kind("barrier")  # the fatal barrier is recorded
        assert tracer.by_kind("job")[0].data["status"] == "SimulatedOOMError"


class TestBackendIndependence:
    """The trace is assembled from barrier-merged deltas, so process-
    backend children's ledger contributions must land in the driver's
    trace identically to a serial run."""

    def test_serial_vs_process_traces_identical(self):
        def rows(tracer):
            # Wall-time diagnostics (barrier merge_ms) are inherently
            # backend-dependent; every semantic field must be identical.
            out = []
            for e in tracer.events:
                if e.kind not in ("worker", "barrier"):
                    continue
                row = e.to_json()
                row.get("data", {}).pop("merge_ms", None)
                out.append(row)
            return out

        t_serial, r_serial = traced_run("serial")
        t_proc, r_proc = traced_run("process", procs=2)
        assert rows(t_serial) == rows(t_proc)
        assert t_proc.worker_totals() == r_serial.ledger.worker_totals()

    def test_process_trace_records_shared_export_sizes(self):
        t_proc, _ = traced_run("process", procs=2)
        exports = t_proc.by_kind("export")
        assert len(exports) == 1
        data = exports[0].data
        assert data["total_bytes"] >= data["indptr"] + data["indices"]
        assert data["indptr"] == (30 + 1) * 8


class TestJsonlRoundtrip:
    def test_events_and_meta_roundtrip_exactly(self, tmp_path):
        tracer, _ = traced_run()
        path = write_jsonl(tracer, tmp_path / "trace.jsonl")
        rebuilt = read_jsonl(path)
        assert rebuilt.meta == tracer.meta
        assert [e.to_json() for e in rebuilt.events] == [
            e.to_json() for e in tracer.events
        ]

    def test_totals_survive_roundtrip_serial_and_process(self, tmp_path):
        for backend in ("serial", "process"):
            tracer, result = traced_run(backend, procs=2)
            path = write_jsonl(tracer, tmp_path / f"{backend}.jsonl")
            rebuilt = read_jsonl(path)
            assert rebuilt.summary() == result.ledger.summary()
            assert rebuilt.worker_totals() == result.ledger.worker_totals()

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "header", "schema": "other/v9"}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            read_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_jsonl(path)


class TestChromeTrace:
    def test_valid_and_cost_totals_match_ledger_exactly(self, tmp_path):
        for backend in ("serial", "process"):
            tracer, result = traced_run(backend, procs=2)
            path = write_chrome_trace(tracer, tmp_path / f"{backend}.json")
            info = validate_chrome_trace(path)
            assert info["schema"] == SCHEMA
            assert info["worker_cost_totals"] == result.ledger.worker_totals()
            assert info["supersteps"] == result.ledger.num_supersteps

    def test_cost_slices_tile_the_makespan_timeline(self, tmp_path):
        tracer, result = traced_run()
        path = write_chrome_trace(tracer, tmp_path / "t.json")
        document = json.loads(path.read_text())
        cost_events = [
            e for e in document["traceEvents"] if e.get("cat") == "cost"
        ]
        # Every superstep's slices start at the sum of previous maxima.
        starts = {}
        for event in cost_events:
            starts.setdefault(event["args"]["superstep"], set()).add(event["ts"])
        assert all(len(v) == 1 for v in starts.values())
        offsets = sorted(next(iter(v)) for v in starts.values())
        expected, acc = [], 0.0
        for step in result.ledger.steps:
            expected.append(acc)
            acc += step.max_cost
        assert offsets == expected

    def test_multi_job_traces_stay_monotonic(self, tmp_path):
        g = erdos_renyi(30, 0.25, seed=13)
        tracer = Tracer()
        for _ in range(2):  # one tracer observing two jobs (fig5-style)
            BSPEngine(g, hash_partition(30, 3), trace=tracer).run(Chatter())
        assert len(tracer.by_kind("job")) == 2
        path = write_chrome_trace(tracer, tmp_path / "multi.json")
        document = json.loads(path.read_text())
        names = {
            e["name"]
            for e in document["traceEvents"]
            if e.get("cat") == "cost"
        }
        assert any(n.startswith("job0") for n in names)
        assert any(n.startswith("job1") for n in names)

    def test_validation_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all")
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_chrome_trace(path)
        path.write_text(json.dumps({"no_events": True}))
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace(path)
        path.write_text(
            json.dumps({"traceEvents": [], "otherData": {"schema": "nope"}})
        )
        with pytest.raises(ValueError, match="schema"):
            validate_chrome_trace(path)


class TestPSgLIntegration:
    def test_psgl_trace_parity_with_ledger(self):
        tracer = Tracer()
        result = PSgL(complete_graph(6), num_workers=2, trace=tracer).run(
            triangle()
        )
        assert result.count == 20
        assert result.trace is tracer
        assert tracer.worker_totals() == result.ledger.worker_totals()

    def test_psgl_untraced_has_no_trace(self):
        result = PSgL(complete_graph(5), num_workers=2).run(triangle())
        assert result.trace is None

    def test_one_tracer_across_strategies(self):
        tracer = Tracer()
        g = complete_graph(6)
        for strategy in ("random", "roulette"):
            PSgL(g, num_workers=2, strategy=strategy, trace=tracer).run(
                triangle()
            )
        assert len(tracer.by_kind("job")) == 2


class TestStragglerReport:
    def test_report_names_the_straggler(self):
        tracer, result = traced_run()
        report = straggler_report(tracer)
        totals = result.ledger.worker_totals()
        slowest = totals.index(max(totals))
        assert f"worker {slowest:>3}" in report
        assert "<- straggler" in report
        assert "imbalance" in report

    def test_empty_trace_handled(self):
        assert "no worker events" in straggler_report(Tracer())

    def test_event_json_roundtrip(self):
        event = TraceEvent(
            "worker", superstep=2, worker=1, wall_ms=3.5, data={"cost": 7.0}
        )
        assert TraceEvent.from_json(event.to_json()) == event
