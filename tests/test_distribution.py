"""Unit tests for the distribution strategies (Algorithm 3)."""

import numpy as np
import pytest

from repro.core import (
    Gpsi,
    RandomStrategy,
    RouletteStrategy,
    UNMAPPED,
    WorkloadAwareStrategy,
    make_strategy,
)
from repro.exceptions import DistributionError
from repro.graph import Graph, hash_partition
from repro.pattern import square


def worker_state(seed=0):
    return {"dist_rng": np.random.default_rng(seed)}


@pytest.fixture
def setup():
    # star-ish graph: vertex 0 is a hub (degree 4), 5/6 are low degree.
    g = Graph(7, [(0, 1), (0, 2), (0, 3), (0, 4), (5, 6), (5, 0)])
    pattern = square()
    partition = hash_partition(7, 2)
    # gpsi with two grays: v2 -> hub 0, v4 -> leaf 6
    gpsi = Gpsi((5, 0, UNMAPPED, 6), black=0b0001, next_vertex=-1)
    return g, pattern, partition, gpsi


class TestFactory:
    def test_names(self):
        assert make_strategy("random").name == "random"
        assert make_strategy("roulette").name == "roulette"
        assert make_strategy("workload-aware", 0.5).name == "workload-aware(0.5)"
        assert make_strategy("WA,0").name == "workload-aware(0.0)"
        assert make_strategy("wa,1").name == "workload-aware(1.0)"

    def test_unknown(self):
        with pytest.raises(DistributionError):
            make_strategy("magic")

    def test_alpha_out_of_range(self):
        with pytest.raises(DistributionError):
            WorkloadAwareStrategy(alpha=2.0)


class TestRandom:
    def test_single_candidate_no_rng_needed(self, setup):
        g, pattern, partition, gpsi = setup
        chosen = RandomStrategy().choose(gpsi, [3], pattern, g, partition, {})
        assert chosen == 3

    def test_uniform_over_candidates(self, setup):
        g, pattern, partition, gpsi = setup
        state = worker_state(1)
        picks = [
            RandomStrategy().choose(gpsi, [1, 3], pattern, g, partition, state)
            for _ in range(300)
        ]
        assert 0.35 < picks.count(1) / 300 < 0.65

    def test_missing_rng_raises(self, setup):
        g, pattern, partition, gpsi = setup
        with pytest.raises(DistributionError):
            RandomStrategy().choose(gpsi, [1, 3], pattern, g, partition, {})


class TestRoulette:
    def test_prefers_low_degree(self, setup):
        """Heuristic 1: Gpsis should be expanded by low-degree vertices.

        Gray v2 maps to the hub (deg 5), gray v4 to a leaf (deg 1): the
        leaf must win about 5x more often.
        """
        g, pattern, partition, gpsi = setup
        state = worker_state(2)
        picks = [
            RouletteStrategy().choose(gpsi, [1, 3], pattern, g, partition, state)
            for _ in range(600)
        ]
        leaf_share = picks.count(3) / 600
        assert leaf_share > 0.7

    def test_single_candidate(self, setup):
        g, pattern, partition, gpsi = setup
        assert RouletteStrategy().choose(gpsi, [1], pattern, g, partition, {}) == 1

    def test_equation6_probabilities(self, setup):
        """p_k must equal (1/deg_k) / sum(1/deg_i)."""
        g, pattern, partition, gpsi = setup
        state = worker_state(3)
        n = 4000
        picks = [
            RouletteStrategy().choose(gpsi, [1, 3], pattern, g, partition, state)
            for _ in range(n)
        ]
        deg_hub, deg_leaf = g.degree(0), g.degree(6)
        expected_leaf = (1 / deg_leaf) / (1 / deg_leaf + 1 / deg_hub)
        assert abs(picks.count(3) / n - expected_leaf) < 0.04


class TestEmptyCandidates:
    """Regression: every strategy must raise DistributionError on an
    empty candidate list.  Before the fix each failed differently —
    workload-aware returned the ``-1`` sentinel (which negative indexing
    turned into a silently wrong ``mapping[-1]`` route), random raised
    ValueError from ``rng.integers(0)``, roulette IndexError."""

    def test_random_raises_distribution_error(self, setup):
        g, pattern, partition, gpsi = setup
        with pytest.raises(DistributionError, match="no GRAY candidates"):
            RandomStrategy().choose(
                gpsi, [], pattern, g, partition, worker_state()
            )

    def test_roulette_raises_distribution_error(self, setup):
        g, pattern, partition, gpsi = setup
        with pytest.raises(DistributionError, match="no GRAY candidates"):
            RouletteStrategy().choose(
                gpsi, [], pattern, g, partition, worker_state()
            )

    def test_workload_aware_raises_instead_of_sentinel(self, setup):
        g, pattern, partition, gpsi = setup
        strategy = WorkloadAwareStrategy(alpha=0.5)
        with pytest.raises(DistributionError, match="no GRAY candidates"):
            strategy.choose(gpsi, [], pattern, g, partition, worker_state())
        # The guard must also fire before the load view is touched.
        state = worker_state()
        with pytest.raises(DistributionError):
            strategy.choose(gpsi, [], pattern, g, partition, state)
        assert "dist_load_view" not in state


class TestWorkloadAware:
    def test_alpha_zero_always_cheapest(self, setup):
        """alpha=0 ignores worker load entirely: pure min-increase."""
        g, pattern, partition, gpsi = setup
        strategy = WorkloadAwareStrategy(alpha=0.0)
        state = worker_state(4)
        for _ in range(10):
            # leaf (deg 1, one white neighbour) has the smaller C(deg, w)
            assert strategy.choose(gpsi, [1, 3], pattern, g, partition, state) == 3

    def test_local_view_accumulates(self, setup):
        g, pattern, partition, gpsi = setup
        strategy = WorkloadAwareStrategy(alpha=1.0)
        state = worker_state(5)
        strategy.choose(gpsi, [1, 3], pattern, g, partition, state)
        view = state["dist_load_view"]
        assert sum(view) > 0

    def test_alpha_one_balances(self, setup):
        """With a saturated worker, alpha=1 must route away from it."""
        g, pattern, partition, _ = setup
        # grays on *different* workers: v2 -> hub 0 (worker 0),
        # v4 -> vertex 5 (worker 1)
        gpsi = Gpsi((6, 0, UNMAPPED, 5), black=0b0001, next_vertex=-1)
        strategy = WorkloadAwareStrategy(alpha=1.0)
        state = worker_state(6)
        saturated = partition.owner(5)
        state["dist_load_view"] = [0.0, 0.0]
        state["dist_load_view"][saturated] = 1e9
        chosen = strategy.choose(gpsi, [1, 3], pattern, g, partition, state)
        assert partition.owner(gpsi.mapping[chosen]) != saturated

    def test_deterministic(self, setup):
        g, pattern, partition, gpsi = setup
        strategy = WorkloadAwareStrategy(alpha=0.5)
        a = strategy.choose(gpsi, [1, 3], pattern, g, partition, worker_state(7))
        b = strategy.choose(gpsi, [1, 3], pattern, g, partition, worker_state(7))
        assert a == b
