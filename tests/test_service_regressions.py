"""Regression tests for three service-layer bugs.

* Job durations were computed from ``time.time()`` deltas — an NTP step
  (or any wall-clock adjustment) mid-job produced negative
  ``queue_seconds``/``run_seconds``.  Durations now come from
  ``time.monotonic()``; wall-clock timestamps remain for display.
* ``ResultCache.bytes_used`` / ``__len__`` read ``_bytes``/``_entries``
  without the lock, racing ``put``'s insert-then-evict window.
* ``ServiceHTTPHandler._send`` let ``BrokenPipeError`` escape when a
  client disconnected before reading its response, splatting a
  traceback per impatient client; drops are now counted silently in
  ``psgl_http_dropped_responses``.
"""

import threading
import time
import types

import pytest

from repro.service import jobs as jobs_mod
from repro.service.cache import ResultCache
from repro.service.jobs import JobManager, JobState
from repro.service.server import ServiceHTTPHandler


# ----------------------------------------------------------------------
# Monotonic job durations
# ----------------------------------------------------------------------
class SteppingClock:
    """A ``time``-module stand-in whose wall clock steps *backwards* on
    every read — the adversarial NTP case — while ``monotonic`` stays
    the real monotonic clock."""

    def __init__(self):
        self._wall = 1_700_000_000.0
        self._lock = threading.Lock()
        self.monotonic = time.monotonic

    def time(self):
        with self._lock:
            self._wall -= 10.0  # a 10 s backwards step per observation
            return self._wall


class TestMonotonicDurations:
    def test_durations_non_negative_under_wall_clock_steps(self, monkeypatch):
        monkeypatch.setattr(jobs_mod, "time", SteppingClock())
        manager = JobManager(runner=lambda job: {"ok": True}, max_inflight=1)
        try:
            job = manager.submit({"q": 1})
            manager.wait(job.id, timeout=10)
            assert job.state == JobState.COMPLETED
            # The wall clock went backwards at every observation, so the
            # old time.time() deltas would have been negative here.
            assert job.finished_at < job.started_at < job.submitted_at
            assert job.queue_seconds is not None and job.queue_seconds >= 0
            assert job.run_seconds is not None and job.run_seconds >= 0
        finally:
            manager.close()

    def test_cache_hit_records_zero_durations(self, monkeypatch):
        monkeypatch.setattr(jobs_mod, "time", SteppingClock())
        manager = JobManager(runner=lambda job: {})
        try:
            job = manager.record_completed({"q": 1}, {"count": 3})
            assert job.queue_seconds == 0.0
            assert job.run_seconds == 0.0
        finally:
            manager.close()

    def test_unstarted_job_reports_no_durations(self):
        manager = JobManager(runner=lambda job: {})
        try:
            job = jobs_mod.Job(id=99, spec={})
            assert job.queue_seconds is None
            assert job.run_seconds is None
        finally:
            manager.close()

    def test_to_json_keeps_wall_clock_for_display(self):
        job = jobs_mod.Job(id=1, spec={})
        obj = job.to_json()
        assert obj["submitted_at"] == job.submitted_at
        assert "submitted_mono" not in obj  # mono clocks are internal


# ----------------------------------------------------------------------
# Cache read-path locking
# ----------------------------------------------------------------------
class TestCacheConcurrentReads:
    def test_hammer_puts_against_size_reads(self):
        """Concurrent writers churning the LRU against readers polling
        ``bytes_used``/``len`` must never raise and never observe the
        byte budget exceeded (the old unlocked read could see the window
        between an insert and its evictions)."""
        payload = {"count": 1, "pad": "x" * 64}
        probe = ResultCache()
        probe.put(("g", "p", "s", ()), payload)
        entry_size = probe.bytes_used
        cache = ResultCache(max_bytes=8 * entry_size, max_entries=6)
        errors = []
        stop = threading.Event()

        def writer(tag):
            try:
                i = 0
                while not stop.is_set():
                    cache.put(("g", f"{tag}-{i % 24}", "s", ()), payload)
                    i += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    used = cache.bytes_used
                    count = len(cache)
                    assert 0 <= used <= cache.max_bytes
                    assert 0 <= count <= cache.max_entries
                    stats = cache.stats()
                    assert stats["bytes"] <= cache.max_bytes
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(5)
        assert errors == []
        assert cache.bytes_used <= cache.max_bytes
        assert len(cache) <= cache.max_entries

    def test_reads_consistent_after_clear(self):
        cache = ResultCache()
        cache.put(("g", "p", "s", ()), {"count": 1})
        assert len(cache) == 1 and cache.bytes_used > 0
        cache.clear()
        assert len(cache) == 0 and cache.bytes_used == 0


# ----------------------------------------------------------------------
# Dropped-response accounting
# ----------------------------------------------------------------------
class BrokenPipeFile:
    """A write file-object standing in for a socket the client closed."""

    def __init__(self, fail_after=0):
        self.writes = 0
        self.fail_after = fail_after

    def write(self, data):
        if self.writes >= self.fail_after:
            raise BrokenPipeError("client went away")
        self.writes += 1
        return len(data)

    def flush(self):
        pass


class ServiceStub:
    def __init__(self):
        self.http = []
        self.dropped = 0

    def record_http(self, method, code):
        self.http.append((method, code))

    def record_dropped_response(self):
        self.dropped += 1


def make_handler(wfile):
    """A ServiceHTTPHandler wired to a fake socket, no TCP machinery."""
    handler = ServiceHTTPHandler.__new__(ServiceHTTPHandler)
    handler.wfile = wfile
    handler.rfile = None
    handler.command = "GET"
    handler.path = "/healthz"
    handler.request_version = "HTTP/1.1"
    handler.requestline = "GET /healthz HTTP/1.1"
    handler.client_address = ("127.0.0.1", 0)
    handler.close_connection = False
    handler.server = types.SimpleNamespace(service=ServiceStub())
    return handler


class TestDroppedResponses:
    @pytest.mark.parametrize("fail_after", [0, 1])
    def test_broken_pipe_is_counted_not_raised(self, fail_after):
        """Whether the headers or the body hit the dead socket, the
        handler must swallow the error, mark the connection closed, and
        bump the dropped-response counter."""
        handler = make_handler(BrokenPipeFile(fail_after=fail_after))
        handler._send(200, b'{"ok": true}\n', "application/json")
        stub = handler.server.service
        assert stub.dropped == 1
        assert handler.close_connection is True
        # The request itself still counts: it was served, the client
        # just never read the answer.
        assert stub.http == [("GET", 200)]

    def test_connection_reset_also_counted(self):
        class ResetFile(BrokenPipeFile):
            def write(self, data):
                raise ConnectionResetError("reset by peer")

        handler = make_handler(ResetFile())
        handler._send(503, b"busy", "text/plain")
        assert handler.server.service.dropped == 1

    def test_healthy_socket_drops_nothing(self):
        class GoodFile(BrokenPipeFile):
            def write(self, data):
                self.writes += 1
                return len(data)

        wfile = GoodFile()
        handler = make_handler(wfile)
        handler._send(200, b"ok", "text/plain")
        stub = handler.server.service
        assert stub.dropped == 0
        assert stub.http == [("GET", 200)]
        assert wfile.writes > 0
