"""Run the executable examples embedded in module docstrings."""

import doctest

import repro
import repro.core.listing


def test_package_docstring_examples():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted >= 1
    assert results.failed == 0


def test_listing_docstring_examples():
    results = doctest.testmod(repro.core.listing, verbose=False)
    assert results.attempted >= 1
    assert results.failed == 0
