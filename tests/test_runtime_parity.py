"""Backend parity: serial vs. parallel backends must agree exactly.

For every pattern in the catalog, on small random graphs, the process
backend must return the identical embedding set AND the identical
per-worker compute/message ledger — parallel execution changes where
work runs, never what work happens.  This is the core guarantee that
lets every simulator-era result stand on the real runtime.
"""

import pytest

from repro.bsp import BSPEngine, VertexProgram, sum_aggregator
from repro.core import PSgL
from repro.graph import hash_partition
from repro.graph.generators import chung_lu_power_law, erdos_renyi
from repro.pattern import paper_patterns

GRAPHS = {
    "er": erdos_renyi(28, 0.25, seed=13),
    "powerlaw": chung_lu_power_law(30, gamma=2.5, avg_degree=4, seed=5),
}


def run_listing(graph, pattern, backend, procs=None):
    driver = PSgL(
        graph,
        num_workers=4,
        strategy="WA,0.5",
        seed=3,
        backend=backend,
        procs=procs,
    )
    return driver.run(pattern, collect_instances=True)


def assert_parity(reference, other):
    assert other.count == reference.count
    assert sorted(other.instances) == sorted(reference.instances)
    assert other.supersteps == reference.supersteps
    assert other.gpsi_by_vertex == reference.gpsi_by_vertex
    assert other.index_queries == reference.index_queries
    assert other.index_pruned == reference.index_pruned
    for step_ref, step_other in zip(reference.ledger.steps, other.ledger.steps):
        assert step_other.worker_compute_calls == step_ref.worker_compute_calls
        assert step_other.worker_messages == step_ref.worker_messages
        assert step_other.worker_cost == step_ref.worker_cost
    assert other.ledger.peak_live_messages == reference.ledger.peak_live_messages


@pytest.mark.parametrize("pattern_name", sorted(paper_patterns()))
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_process_backend_matches_serial(graph_name, pattern_name):
    graph = GRAPHS[graph_name]
    pattern = paper_patterns()[pattern_name]
    reference = run_listing(graph, pattern, "serial")
    parallel = run_listing(graph, pattern, "process", procs=2)
    assert_parity(reference, parallel)


@pytest.mark.parametrize("pattern_name", ["PG1", "PG3"])
def test_thread_backend_matches_serial(pattern_name):
    graph = GRAPHS["er"]
    pattern = paper_patterns()[pattern_name]
    reference = run_listing(graph, pattern, "serial")
    threaded = run_listing(graph, pattern, "thread", procs=3)
    assert_parity(reference, threaded)


def test_process_backend_respects_strategy_determinism():
    """Stochastic distribution strategies seed per logical worker, so
    even the roulette strategy must agree across backends."""
    graph = GRAPHS["er"]
    pattern = paper_patterns()["PG2"]
    for strategy in ("random", "roulette"):
        serial = PSgL(
            graph, num_workers=3, strategy=strategy, seed=7, backend="serial"
        ).run(pattern, collect_instances=True)
        process = PSgL(
            graph, num_workers=3, strategy=strategy, seed=7, backend="process", procs=2
        ).run(pattern, collect_instances=True)
        assert sorted(process.instances) == sorted(serial.instances)
        assert process.total_gpsis == serial.total_gpsis
        assert process.makespan == serial.makespan


class SnapshotEcho(VertexProgram):
    """Emits what each vertex *sees* through the per-superstep aggregator
    snapshot, so any skew in how the snapshot reaches pool processes —
    staleness, per-worker divergence — changes the outputs, not just the
    final aggregate."""

    def __init__(self, rounds=3):
        self.rounds = rounds

    def compute(self, ctx, messages):
        if ctx.superstep:
            ctx.emit((ctx.vertex, ctx.superstep, ctx.aggregated("activity")))
        ctx.aggregate("activity", 1 + len(messages))
        if ctx.superstep < self.rounds:
            for u in ctx.graph.neighbors(ctx.vertex):
                ctx.send(int(u), ctx.vertex)

    def aggregators(self):
        return {"activity": sum_aggregator(0)}


def test_aggregator_snapshot_parity_on_process_backend():
    graph = GRAPHS["er"]
    runs = {}
    for backend in ("serial", "process"):
        engine = BSPEngine(
            graph, hash_partition(graph.num_vertices, 4), backend=backend, procs=2
        )
        result = engine.run(SnapshotEcho(rounds=3))
        runs[backend] = (result.outputs, result.aggregated)
    assert runs["process"] == runs["serial"]


def test_snapshot_pickled_once_per_superstep(monkeypatch):
    """The driver must snapshot the aggregator registry once per
    superstep, not once per submitted worker batch."""
    from repro.bsp.aggregate import AggregatorRegistry

    calls = []
    original = AggregatorRegistry.snapshot

    def counting_snapshot(self):
        calls.append(1)
        return original(self)

    monkeypatch.setattr(AggregatorRegistry, "snapshot", counting_snapshot)
    graph = GRAPHS["er"]
    engine = BSPEngine(
        graph, hash_partition(graph.num_vertices, 4), backend="process", procs=2
    )
    result = engine.run(SnapshotEcho(rounds=3))
    assert len(calls) == result.supersteps


def test_per_vertex_counts_and_message_bytes_parity():
    graph = GRAPHS["powerlaw"]
    pattern = paper_patterns()["PG1"]
    kwargs = dict(count_per_vertex=True, track_message_bytes=True)
    serial = PSgL(graph, num_workers=3, seed=1, backend="serial").run(
        pattern, **kwargs
    )
    process = PSgL(
        graph, num_workers=3, seed=1, backend="process", procs=2
    ).run(pattern, **kwargs)
    assert process.per_vertex_counts == serial.per_vertex_counts
    assert process.message_bytes == serial.message_bytes
    assert process.count == serial.count
