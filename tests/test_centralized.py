"""Unit tests for the centralized enumerator and triangle counter."""

from repro.baselines import (
    count_instances,
    count_triangles,
    enumerate_instances,
    list_triangles,
)
from repro.graph import (
    OrderedGraph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    star_graph,
)
from repro.pattern import PatternGraph, clique4, paper_patterns, square, triangle


class TestEnumerator:
    def test_triangles_closed_form(self):
        assert count_instances(complete_graph(6), triangle()) == 20

    def test_yields_actual_mappings(self):
        g = complete_graph(4)
        for mapping in enumerate_instances(g, triangle()):
            a, b, c = mapping
            assert g.has_edge(a, b) and g.has_edge(b, c) and g.has_edge(a, c)

    def test_respects_partial_order(self):
        g = complete_graph(5)
        ordered = OrderedGraph(g)
        for mapping in enumerate_instances(g, triangle(), ordered):
            assert ordered.precedes(mapping[0], mapping[1])
            assert ordered.precedes(mapping[1], mapping[2])

    def test_orderless_pattern_counts_every_automorphism(self):
        g = complete_graph(4)
        raw = PatternGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert count_instances(g, raw) == 6 * 4  # |S3| * C(4,3)

    def test_injective_only(self):
        # single edge as "triangle" would need a repeated vertex
        g = cycle_graph(4)
        assert count_instances(g, triangle()) == 0

    def test_non_induced_semantics(self):
        # K4 contains squares even though each has both chords present
        assert count_instances(complete_graph(4), square()) == 3

    def test_empty_result_on_sparse_graph(self):
        assert count_instances(star_graph(8), clique4()) == 0

    def test_reuses_prebuilt_ordering(self):
        g = erdos_renyi(40, 0.2, seed=1)
        ordered = OrderedGraph(g)
        direct = count_instances(g, square())
        assert count_instances(g, square(), ordered) == direct


class TestTriangleListing:
    def test_matches_enumerator(self):
        g = erdos_renyi(80, 0.12, seed=2)
        assert count_triangles(g) == count_instances(g, triangle())

    def test_each_triangle_once_rank_sorted(self):
        g = complete_graph(5)
        ordered = OrderedGraph(g)
        seen = set()
        for a, b, c in list_triangles(g):
            assert ordered.precedes(a, b) and ordered.precedes(b, c)
            key = frozenset((a, b, c))
            assert key not in seen
            seen.add(key)
        assert len(seen) == 10

    def test_triangle_free_graphs(self):
        assert count_triangles(grid_graph(4, 4)) == 0
        assert count_triangles(star_graph(9)) == 0

    def test_skewed_graph(self):
        from repro.graph import chung_lu_power_law

        g = chung_lu_power_law(300, 2.0, avg_degree=6, max_degree=50, seed=3)
        assert count_triangles(g) == count_instances(g, triangle())


class TestAllPaperPatterns:
    def test_oracle_agrees_with_itself_on_relabeling(self):
        """Relabelling a pattern must not change its (broken) count."""
        from repro.pattern import break_automorphisms

        g = erdos_renyi(40, 0.2, seed=4)
        for pattern in paper_patterns().values():
            k = pattern.num_vertices
            rotated = pattern.with_partial_order(()).relabeled(
                [(i + 1) % k for i in range(k)]
            )
            rebroken = break_automorphisms(rotated)
            assert count_instances(g, rebroken) == count_instances(g, pattern)
