"""Integration tests for the PSgL driver: counts, statistics, options."""

import pytest

from repro import PSgL, SimulatedOOMError
from repro.baselines import count_instances
from repro.exceptions import PatternError
from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    star_graph,
)
from repro.pattern import (
    PatternGraph,
    clique,
    clique4,
    diamond,
    house,
    paper_patterns,
    square,
    triangle,
)


class TestClosedFormCounts:
    """Counts with known closed forms on deterministic graphs."""

    def test_triangles_in_kn(self):
        # C(n,3)
        for n, expected in [(4, 4), (5, 10), (6, 20), (7, 35)]:
            assert PSgL(complete_graph(n), num_workers=3).count(triangle()) == expected

    def test_squares_in_kn(self):
        # 3 * C(n,4) four-cycles in K_n
        assert PSgL(complete_graph(5), num_workers=2).count(square()) == 15
        assert PSgL(complete_graph(6), num_workers=4).count(square()) == 45

    def test_k4_in_kn(self):
        # C(n,4)
        assert PSgL(complete_graph(6)).count(clique4()) == 15
        assert PSgL(complete_graph(7)).count(clique4()) == 35

    def test_k5_in_k7(self):
        assert PSgL(complete_graph(7)).count(clique(5)) == 21

    def test_squares_in_grid(self):
        # unit squares in a 3x3 grid: 4
        assert PSgL(grid_graph(3, 3)).count(square()) == 4

    def test_cycle_has_no_squares(self):
        assert PSgL(cycle_graph(7)).count(square()) == 0

    def test_cn_contains_itself(self):
        from repro.pattern import cycle as cycle_pattern

        assert PSgL(cycle_graph(6)).count(cycle_pattern(6)) == 1

    def test_star_has_no_triangles(self):
        assert PSgL(star_graph(10)).count(triangle()) == 0

    def test_diamonds_in_kn(self):
        # diamond instances in K5: C(5,4) * (6 edges choosable as the
        # missing one) ... cross-check the oracle instead of deriving
        g = complete_graph(5)
        assert PSgL(g).count(diamond()) == count_instances(g, diamond())

    def test_figure1_squares(self):
        """The paper's running example: Gd contains exactly the three
        squares {1,2,3,5}, {1,2,5,6}, {2,3,4,5} (1-based)."""
        edges_1based = [
            (1, 2), (1, 5), (1, 6), (2, 3), (2, 5),
            (3, 4), (3, 5), (4, 5), (5, 6),
        ]
        g = Graph(6, [(u - 1, v - 1) for u, v in edges_1based])
        result = PSgL(g, num_workers=2).run(square(), collect_instances=True)
        assert result.count == 3
        found = {frozenset(m) for m in result.instances}
        assert found == {
            frozenset({0, 1, 2, 4}),
            frozenset({0, 1, 4, 5}),
            frozenset({1, 2, 3, 4}),
        }


class TestAgainstOracle:
    @pytest.mark.parametrize("pattern_name", ["PG1", "PG2", "PG3", "PG4", "PG5"])
    def test_er_graph(self, pattern_name):
        g = erdos_renyi(70, 0.12, seed=11)
        pattern = paper_patterns()[pattern_name]
        assert PSgL(g, num_workers=5, seed=3).count(pattern) == count_instances(
            g, pattern
        )

    @pytest.mark.parametrize(
        "strategy", ["random", "roulette", "WA,0", "WA,0.5", "WA,1"]
    )
    def test_every_strategy_same_count(self, strategy):
        g = erdos_renyi(60, 0.12, seed=12)
        expected = count_instances(g, square())
        assert (
            PSgL(g, num_workers=4, strategy=strategy, seed=5).count(square())
            == expected
        )

    @pytest.mark.parametrize("workers", [1, 2, 7, 16])
    def test_worker_count_irrelevant_to_count(self, workers):
        g = erdos_renyi(50, 0.15, seed=13)
        expected = count_instances(g, triangle())
        assert PSgL(g, num_workers=workers).count(triangle()) == expected

    @pytest.mark.parametrize("index_kind", ["bloom", "exact", "none"])
    def test_index_choice_irrelevant_to_count(self, index_kind):
        g = erdos_renyi(50, 0.15, seed=14)
        expected = count_instances(g, square())
        assert (
            PSgL(g, num_workers=4, edge_index=index_kind).count(square()) == expected
        )

    def test_every_initial_vertex_same_count(self):
        g = erdos_renyi(40, 0.18, seed=15)
        expected = count_instances(g, square())
        for v0 in range(4):
            assert (
                PSgL(g, num_workers=3).count(square(), initial_vertex=v0) == expected
            )

    def test_unbroken_pattern_auto_breaks(self):
        g = erdos_renyi(40, 0.15, seed=16)
        raw_square = PatternGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert PSgL(g).count(raw_square) == count_instances(g, square())


class TestResultMetadata:
    def test_supersteps_within_theorem1_bounds(self):
        """Theorem 1: |MVC| <= expansion supersteps <= |Vp| - 1.

        Our superstep count includes the initialization superstep and the
        final empty barrier, so expansion steps = supersteps - 1."""
        g = erdos_renyi(60, 0.12, seed=17)
        for pattern in paper_patterns().values():
            result = PSgL(g, num_workers=4).run(pattern)
            expansions = result.supersteps - 1
            if result.count or result.total_gpsis:
                assert expansions >= pattern.minimum_vertex_cover_size()
            assert expansions <= max(pattern.num_vertices, 1)

    def test_worker_costs_length(self):
        g = erdos_renyi(40, 0.1, seed=18)
        result = PSgL(g, num_workers=6).run(triangle())
        assert len(result.worker_costs) == 6

    def test_gpsi_by_vertex_keys_are_pattern_vertices(self):
        g = erdos_renyi(40, 0.15, seed=19)
        result = PSgL(g, num_workers=3).run(square())
        assert set(result.gpsi_by_vertex) <= set(range(4))

    def test_makespan_leq_total_cost(self):
        g = erdos_renyi(40, 0.15, seed=20)
        result = PSgL(g, num_workers=4).run(triangle())
        assert result.makespan <= result.ledger.total_cost() + 1e-9

    def test_index_stats_present(self):
        g = erdos_renyi(50, 0.12, seed=21)
        result = PSgL(g, num_workers=3).run(square())
        assert result.index_queries >= result.index_pruned >= 0

    def test_collect_instances_off_by_default(self):
        g = complete_graph(5)
        assert PSgL(g).run(triangle()).instances is None

    def test_repr(self):
        g = complete_graph(4)
        assert "PG1" in repr(PSgL(g).run(triangle()))


class TestErrorPaths:
    def test_bad_initial_vertex(self):
        with pytest.raises(PatternError):
            PSgL(complete_graph(4)).run(triangle(), initial_vertex=7)

    def test_total_memory_budget(self):
        g = complete_graph(12)
        with pytest.raises(SimulatedOOMError):
            PSgL(g, num_workers=2, memory_budget=10).run(clique4())

    def test_worker_memory_budget(self):
        g = complete_graph(12)
        with pytest.raises(SimulatedOOMError):
            PSgL(g, num_workers=2, worker_memory_budget=5).run(clique4())

    def test_oom_error_carries_context(self):
        g = complete_graph(12)
        try:
            PSgL(g, num_workers=2, memory_budget=10).run(clique4())
        except SimulatedOOMError as exc:
            assert exc.live > exc.budget == 10


class TestDeterminism:
    def test_same_seed_same_ledger(self):
        g = erdos_renyi(60, 0.12, seed=22)
        a = PSgL(g, num_workers=4, strategy="random", seed=9).run(square())
        b = PSgL(g, num_workers=4, strategy="random", seed=9).run(square())
        assert a.makespan == b.makespan
        assert a.worker_costs == b.worker_costs

    def test_different_seed_different_partition(self):
        g = erdos_renyi(60, 0.12, seed=23)
        a = PSgL(g, num_workers=4, strategy="random", seed=1).run(square())
        b = PSgL(g, num_workers=4, strategy="random", seed=2).run(square())
        assert a.count == b.count
        assert a.worker_costs != b.worker_costs


class TestPerVertexCounts:
    def test_k5_triangles_per_vertex(self):
        g = complete_graph(5)
        result = PSgL(g, num_workers=2).run(triangle(), count_per_vertex=True)
        # every vertex of K5 participates in C(4,2) = 6 triangles
        assert result.per_vertex_counts == {v: 6 for v in range(5)}

    def test_sums_to_pattern_size_times_count(self):
        g = erdos_renyi(50, 0.15, seed=30)
        result = PSgL(g, num_workers=4).run(square(), count_per_vertex=True)
        assert sum(result.per_vertex_counts.values()) == 4 * result.count

    def test_off_by_default(self):
        assert PSgL(complete_graph(4)).run(triangle()).per_vertex_counts is None

    def test_matches_local_triangle_counts(self):
        g = erdos_renyi(40, 0.2, seed=31)
        result = PSgL(g, num_workers=3).run(triangle(), count_per_vertex=True)
        for v in g.vertices():
            assert result.per_vertex_counts.get(v, 0) == g.triangles_at(v)


class TestMessageBytes:
    def test_tracked_when_requested(self):
        g = complete_graph(6)
        result = PSgL(g, num_workers=2).run(square(), track_message_bytes=True)
        # every routed Gpsi costs at least the 2-byte header + mask
        assert result.message_bytes >= 3 * result.total_gpsis / 2

    def test_off_by_default(self):
        assert PSgL(complete_graph(4)).run(triangle()).message_bytes is None


class TestIndexReuse:
    def test_index_built_once_per_driver(self):
        g = erdos_renyi(50, 0.15, seed=32)
        psgl = PSgL(g, num_workers=2)
        psgl.run(triangle())
        first = psgl._edge_index
        psgl.run(square())
        assert psgl._edge_index is first

    def test_stats_reset_between_runs(self):
        g = erdos_renyi(50, 0.15, seed=33)
        psgl = PSgL(g, num_workers=2)
        a = psgl.run(square())
        b = psgl.run(square())
        assert a.index_queries == b.index_queries
