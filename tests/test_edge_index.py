"""Unit tests for the light-weight edge index (Section 5.2.3)."""

import pytest

from repro.core import (
    BloomEdgeIndex,
    ExactEdgeIndex,
    NullEdgeIndex,
    build_edge_index,
)
from repro.graph import complete_graph, erdos_renyi


class TestBloomEdgeIndex:
    def test_no_false_negatives(self):
        g = erdos_renyi(100, 0.1, seed=1)
        index = BloomEdgeIndex(g, fp_rate=0.01)
        for u, v in g.edges():
            assert index.might_contain(u, v)
            assert index.might_contain(v, u)  # undirected

    def test_low_false_positive_rate(self):
        g = erdos_renyi(200, 0.05, seed=2)
        index = BloomEdgeIndex(g, fp_rate=0.01, seed=3)
        non_edges = [
            (u, v)
            for u in range(0, 200, 3)
            for v in range(u + 1, 200, 7)
            if not g.has_edge(u, v)
        ]
        fp = sum(1 for u, v in non_edges if index.might_contain(u, v))
        assert fp / len(non_edges) < 0.05

    def test_statistics_tracked(self):
        g = complete_graph(4)
        index = BloomEdgeIndex(g)
        index.might_contain(0, 1)
        index.might_contain(0, 1)
        assert index.queries == 2
        assert index.positives == 2
        assert index.pruned == 0

    def test_memory_small(self):
        g = erdos_renyi(500, 0.02, seed=4)
        index = BloomEdgeIndex(g, fp_rate=0.01)
        # ~10 bits/edge at 1% fp; must be far below an exact set's cost
        assert index.memory_bytes() < 40 * g.num_edges

    def test_estimated_fp_rate(self):
        g = erdos_renyi(300, 0.05, seed=5)
        assert 0.0 < BloomEdgeIndex(g, fp_rate=0.01).estimated_fp_rate() < 0.05


class TestExactEdgeIndex:
    def test_exact_membership(self):
        g = erdos_renyi(80, 0.1, seed=6)
        index = ExactEdgeIndex(g)
        for u in range(80):
            for v in range(u + 1, 80, 5):
                assert index.might_contain(u, v) == g.has_edge(u, v)

    def test_prune_count(self):
        g = complete_graph(3)
        index = ExactEdgeIndex(g)
        index.might_contain(0, 1)   # hit
        index.might_contain(0, 2)   # hit
        assert index.pruned == 0


class TestNullEdgeIndex:
    def test_always_positive(self):
        index = NullEdgeIndex()
        assert index.might_contain(123, 456)
        assert index.pruned == 0
        assert index.queries == 1


class TestFactory:
    def test_bloom(self):
        assert isinstance(build_edge_index(complete_graph(3), "bloom"), BloomEdgeIndex)

    def test_exact(self):
        assert isinstance(build_edge_index(complete_graph(3), "exact"), ExactEdgeIndex)

    def test_none(self):
        assert isinstance(build_edge_index(complete_graph(3), "none"), NullEdgeIndex)

    def test_unknown(self):
        with pytest.raises(ValueError):
            build_edge_index(complete_graph(3), "magic")
