"""Parity tests for the native expansion kernels (:mod:`repro.core.kernels`).

The native kernels promise *bit-identical* results to the numpy
reference — counts, instances, edge-index probe statistics and ledgers —
with only wall-clock allowed to differ.  On machines without numba the
``PSGL_KERNEL_INTERPRETED`` hook (patched here as
``kernels.ALLOW_INTERPRETED``) runs the exact kernel bodies as plain
Python, so this suite pins the native path's behaviour everywhere; the
CI numba leg runs the same tests against the compiled kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PSgL, kernels
from repro.core.bloom import BloomFilter
from repro.core.edge_index import (
    BloomEdgeIndex,
    ExactEdgeIndex,
    NullEdgeIndex,
    build_edge_index,
)
from repro.graph.generators import erdos_renyi
from repro.pattern import paper_patterns

GRAPH = erdos_renyi(48, 0.22, seed=11)

INDEX_KINDS = ("none", "bloom", "exact")


@pytest.fixture
def interpreted_native(monkeypatch):
    """Let ``kernel='native'`` execute (interpreted when numba is absent)."""
    if not kernels.HAVE_NUMBA:
        monkeypatch.setattr(kernels, "ALLOW_INTERPRETED", True)
    yield


def run_listing(kernel, index_kind, pattern_name, **psgl_kwargs):
    index = build_edge_index(GRAPH, kind=index_kind, seed=5)
    driver = PSgL(
        GRAPH, num_workers=4, edge_index=index, kernel=kernel, **psgl_kwargs
    )
    return driver.run(paper_patterns()[pattern_name], collect_instances=True)


def signature(result):
    """Everything the parity contract pins, per superstep where possible."""
    return (
        result.count,
        sorted(map(tuple, result.instances)),
        result.index_queries,
        result.index_pruned,
        dict(result.gpsi_by_vertex),
        [
            (
                step.superstep,
                step.worker_cost,
                step.worker_messages,
                step.worker_compute_calls,
            )
            for step in result.ledger.steps
        ],
    )


# ----------------------------------------------------------------------
# Knob semantics
# ----------------------------------------------------------------------
class TestResolution:
    def test_choices_and_unknown(self):
        assert kernels.KERNEL_CHOICES == ("auto", "numpy", "native")
        with pytest.raises(ValueError):
            kernels.resolve_kernel("fused")

    def test_auto_never_picks_interpreted(self, monkeypatch):
        # The interpreted hook is a test vehicle, slower than numpy —
        # auto must ignore it even when enabled.
        monkeypatch.setattr(kernels, "ALLOW_INTERPRETED", True)
        expected = "native" if kernels.HAVE_NUMBA else "numpy"
        assert kernels.resolve_kernel("auto") == expected

    def test_native_falls_back_without_runtime(self, monkeypatch):
        monkeypatch.setattr(kernels, "ALLOW_INTERPRETED", False)
        if kernels.HAVE_NUMBA:
            assert kernels.resolve_kernel("native") == "native"
        else:
            assert kernels.resolve_kernel("native") == "numpy"

    def test_kernel_info_shape(self):
        info = kernels.kernel_info("auto")
        assert set(info) == {
            "requested", "effective", "runtime", "numba", "numba_version"
        }
        assert info["runtime"] in ("jit", "interpreted", "numpy")
        assert info["numba"] == kernels.HAVE_NUMBA

    def test_result_records_effective_kernel(self, interpreted_native):
        result = run_listing("native", "bloom", "PG2")
        assert result.kernel == "native"
        assert run_listing("numpy", "bloom", "PG2").kernel == "numpy"


# ----------------------------------------------------------------------
# Unit parity: probe kernels vs their numpy references
# ----------------------------------------------------------------------
class TestProbeParity:
    def test_bloom_contains_many_matches_filter(self):
        rng = np.random.default_rng(0)
        bloom = BloomFilter(500, fp_rate=0.03, seed=9)
        members = rng.integers(0, 1 << 40, size=400, dtype=np.uint64)
        bloom.add_many(members)
        probes = np.concatenate(
            [members[:100], rng.integers(0, 1 << 40, size=300, dtype=np.uint64)]
        )
        expected = bloom.might_contain_many(probes)
        got = kernels.bloom_contains_many(bloom, probes)
        np.testing.assert_array_equal(got, expected)

    def test_bloom_scalar_positions_match(self):
        # The kernel walks (h1 + i*h2) mod m exactly like _probes does,
        # so even false positives agree key-by-key.
        bloom = BloomFilter(50, fp_rate=0.2, seed=3)
        bloom.add_many(np.arange(40, dtype=np.uint64) * 7919)
        keys = np.arange(3000, dtype=np.uint64)
        np.testing.assert_array_equal(
            kernels.bloom_contains_many(bloom, keys),
            bloom.might_contain_many(keys),
        )

    def test_sorted_contains_many(self):
        rng = np.random.default_rng(1)
        haystack = np.unique(rng.integers(0, 10_000, 600).astype(np.uint64))
        needles = rng.integers(0, 10_000, 800).astype(np.uint64)
        expected = np.isin(needles, haystack)
        got = kernels.sorted_contains_many(haystack, needles)
        np.testing.assert_array_equal(got, expected)

    def test_membership_sorted(self):
        haystack = np.array([1, 4, 9, 16, 25], dtype=np.int64)
        needles = np.array([0, 1, 5, 16, 26, 25], dtype=np.int64)
        np.testing.assert_array_equal(
            kernels.membership_sorted(haystack, needles),
            np.isin(needles, haystack),
        )

    def test_empty_inputs(self):
        bloom = BloomFilter(10, fp_rate=0.1, seed=1)
        assert len(kernels.bloom_contains_many(bloom, np.array([], np.uint64))) == 0
        assert len(
            kernels.sorted_contains_many(
                np.array([], np.uint64), np.array([], np.uint64)
            )
        ) == 0

    def test_probe_pack_covers_builtin_indexes(self):
        for kind, cls, code in (
            ("bloom", BloomEdgeIndex, 1),
            ("exact", ExactEdgeIndex, 2),
            ("none", NullEdgeIndex, 0),
        ):
            index = build_edge_index(GRAPH, kind=kind, seed=5)
            assert type(index) is cls
            pack = kernels.probe_pack_for(index)
            assert pack is not None and pack[0] == code

    def test_probe_pack_rejects_unknown_index(self):
        class CustomIndex(ExactEdgeIndex):
            pass

        custom = CustomIndex.__new__(CustomIndex)
        assert kernels.probe_pack_for(custom) is None


# ----------------------------------------------------------------------
# End-to-end parity: full listing runs, numpy vs native
# ----------------------------------------------------------------------
class TestListingParity:
    @pytest.mark.parametrize("index_kind", INDEX_KINDS)
    @pytest.mark.parametrize(
        "pattern_name", ["PG1", "PG2", "PG3", "PG4", "PG5"]
    )
    def test_native_matches_numpy(
        self, interpreted_native, pattern_name, index_kind
    ):
        reference = run_listing("numpy", index_kind, pattern_name)
        native = run_listing("native", index_kind, pattern_name)
        assert signature(native) == signature(reference)

    def test_parity_on_columnar_thread_backend(self, interpreted_native):
        kwargs = dict(backend="thread", wire="columnar")
        reference = run_listing("numpy", "bloom", "PG3", **kwargs)
        native = run_listing("native", "bloom", "PG3", **kwargs)
        assert signature(native) == signature(reference)

    def test_trace_meta_records_kernel(self, interpreted_native):
        from repro.obs import Tracer

        tracer = Tracer()
        index = build_edge_index(GRAPH, kind="bloom", seed=5)
        PSgL(
            GRAPH, num_workers=2, edge_index=index,
            kernel="native", trace=tracer,
        ).run(paper_patterns()["PG2"])
        info = tracer.meta["kernel"]
        assert info["requested"] == "native"
        assert info["effective"] == "native"

    def test_unknown_kernel_rejected(self):
        from repro.exceptions import EngineError

        with pytest.raises((ValueError, EngineError)):
            run_listing("fused", "none", "PG1")


# ----------------------------------------------------------------------
# Hypothesis sweep: random graphs, random patterns, both probe kernels
# ----------------------------------------------------------------------
class TestKernelProperties:
    @settings(deadline=None, max_examples=20)
    @given(
        seed=st.integers(0, 2**16),
        capacity=st.integers(8, 600),
        fp_rate=st.floats(0.01, 0.3),
        n_keys=st.integers(0, 300),
    )
    def test_bloom_kernel_agrees_on_random_filters(
        self, seed, capacity, fp_rate, n_keys
    ):
        rng = np.random.default_rng(seed)
        bloom = BloomFilter(capacity, fp_rate=fp_rate, seed=seed)
        members = rng.integers(0, 1 << 62, size=n_keys, dtype=np.uint64)
        bloom.add_many(members)
        probes = rng.integers(0, 1 << 62, size=256, dtype=np.uint64)
        np.testing.assert_array_equal(
            kernels.bloom_contains_many(bloom, probes),
            bloom.might_contain_many(probes),
        )

    @settings(deadline=None, max_examples=10)
    @given(
        n=st.integers(8, 28),
        p=st.floats(0.15, 0.5),
        seed=st.integers(0, 2**10),
        pattern_name=st.sampled_from(["PG1", "PG2", "PG3"]),
        index_kind=st.sampled_from(list(INDEX_KINDS)),
    )
    def test_listing_parity_on_random_graphs(
        self, n, p, seed, pattern_name, index_kind
    ):
        # hypothesis shares one fixture instance across examples, so the
        # interpreted hook is flipped by hand rather than via monkeypatch.
        saved = kernels.ALLOW_INTERPRETED
        kernels.ALLOW_INTERPRETED = True
        try:
            graph = erdos_renyi(n, p, seed=seed)
            pattern = paper_patterns()[pattern_name]
            results = {}
            for kernel in ("numpy", "native"):
                index = build_edge_index(graph, kind=index_kind, seed=seed)
                result = PSgL(
                    graph, num_workers=3, edge_index=index, kernel=kernel
                ).run(pattern, collect_instances=True)
                results[kernel] = (
                    result.count,
                    sorted(map(tuple, result.instances)),
                    result.index_queries,
                    result.index_pruned,
                )
            assert results["native"] == results["numpy"]
        finally:
            kernels.ALLOW_INTERPRETED = saved
