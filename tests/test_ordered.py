"""Unit tests for repro.graph.ordered (Section 3's ordered graph)."""

import numpy as np

from repro.graph import Graph, OrderedGraph, complete_graph, star_graph


class TestRanking:
    def test_ranks_are_permutation(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)])
        og = OrderedGraph(g)
        assert sorted(og.ranks) == list(range(5))

    def test_rank_orders_by_degree_first(self):
        # degrees: v0=1, v1=3, v2=2
        g = Graph(4, [(0, 1), (1, 2), (1, 3), (2, 3)])
        og = OrderedGraph(g)
        assert og.precedes(0, 1)  # deg 1 < deg 3
        assert og.precedes(2, 1)  # deg 2 < deg 3

    def test_ties_broken_by_vertex_id(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])  # all degree 2
        og = OrderedGraph(g)
        assert og.precedes(0, 1)
        assert og.precedes(1, 2)
        assert og.rank(0) < og.rank(1) < og.rank(2)

    def test_precedes_is_strict_total_order(self):
        g = complete_graph(4)
        og = OrderedGraph(g)
        for u in g.vertices():
            assert not og.precedes(u, u)
            for v in g.vertices():
                if u != v:
                    assert og.precedes(u, v) != og.precedes(v, u)


class TestNbNs:
    def test_nb_plus_ns_is_degree(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)])
        og = OrderedGraph(g)
        for v in g.vertices():
            assert og.nb(v) + og.ns(v) == g.degree(v)

    def test_sums_equal_edge_count(self):
        g = complete_graph(7)
        og = OrderedGraph(g)
        nb_sum, ns_sum, m = og.check_property1()
        assert nb_sum == ns_sum == m == 21

    def test_star_hub_has_all_nb(self):
        g = star_graph(6)
        og = OrderedGraph(g)
        # hub 0 has max degree -> ranks last -> all neighbours below it
        assert og.nb(0) == 5
        assert og.ns(0) == 0
        for leaf in range(1, 6):
            assert og.nb(leaf) == 0
            assert og.ns(leaf) == 1

    def test_lowest_ranked_vertex_has_zero_nb(self):
        g = Graph(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
        og = OrderedGraph(g)
        lowest = int(np.argmin(og.ranks))
        assert og.nb(lowest) == 0

    def test_nb_values_ns_values_vectors(self):
        g = complete_graph(4)
        og = OrderedGraph(g)
        assert list(og.nb_values) == [og.nb(v) for v in g.vertices()]
        assert list(og.ns_values) == [og.ns(v) for v in g.vertices()]

    def test_repr(self):
        assert "OrderedGraph" in repr(OrderedGraph(complete_graph(3)))
