"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import (
    barabasi_albert,
    chung_lu_power_law,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    star_graph,
)


class TestErdosRenyi:
    def test_determinism(self):
        assert list(erdos_renyi(50, 0.2, seed=3).edges()) == list(
            erdos_renyi(50, 0.2, seed=3).edges()
        )

    def test_different_seeds_differ(self):
        a = erdos_renyi(50, 0.2, seed=1)
        b = erdos_renyi(50, 0.2, seed=2)
        assert list(a.edges()) != list(b.edges())

    def test_p_zero_empty(self):
        assert erdos_renyi(20, 0.0, seed=0).num_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi(10, 1.0, seed=0)
        assert g.num_edges == 45

    def test_edge_count_near_expectation(self):
        n, p = 300, 0.1
        g = erdos_renyi(n, p, seed=5)
        expected = p * n * (n - 1) / 2
        assert 0.85 * expected < g.num_edges < 1.15 * expected

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)

    def test_tiny_n(self):
        assert erdos_renyi(1, 0.5).num_edges == 0


class TestChungLu:
    def test_determinism(self):
        a = chung_lu_power_law(200, 2.2, seed=9)
        b = chung_lu_power_law(200, 2.2, seed=9)
        assert a == b

    def test_average_degree_near_target(self):
        g = chung_lu_power_law(2000, 2.5, avg_degree=8.0, seed=4)
        realized = 2 * g.num_edges / g.num_vertices
        assert 6.0 < realized < 10.0

    def test_average_degree_with_cap_still_near_target(self):
        g = chung_lu_power_law(2000, 1.8, avg_degree=6.0, max_degree=80, seed=4)
        realized = 2 * g.num_edges / g.num_vertices
        assert 4.0 < realized < 8.0
        assert g.max_degree() <= 2 * 80  # cap is on expectation, allow slack

    def test_lower_gamma_is_more_skewed(self):
        mild = chung_lu_power_law(1500, 3.0, avg_degree=6, seed=7)
        heavy = chung_lu_power_law(1500, 1.7, avg_degree=6, seed=7)
        assert heavy.max_degree() > mild.max_degree()

    def test_gamma_at_most_one_rejected(self):
        with pytest.raises(GraphError):
            chung_lu_power_law(100, 1.0)

    def test_tiny_n(self):
        assert chung_lu_power_law(1, 2.0).num_vertices == 1


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(100, 3, seed=2)
        # each of the n-m new vertices adds exactly m edges
        assert g.num_edges <= 3 * 97
        assert g.num_edges >= 3 * 97 - 97  # a few may duplicate

    def test_connected_ish(self):
        g = barabasi_albert(50, 2, seed=1)
        assert all(g.degree(v) >= 1 for v in range(2, 50))

    def test_invalid_m(self):
        with pytest.raises(GraphError):
            barabasi_albert(10, 0)
        with pytest.raises(GraphError):
            barabasi_albert(10, 10)


class TestDeterministicFamilies:
    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_cycle_graph(self):
        g = cycle_graph(7)
        assert g.num_edges == 7
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star_graph(self):
        g = star_graph(8)
        assert g.degree(0) == 7
        assert g.num_edges == 7

    def test_star_too_small(self):
        with pytest.raises(GraphError):
            star_graph(0)

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_invalid(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)

    def test_grid_triangle_free(self):
        g = grid_graph(4, 4)
        assert all(g.triangles_at(v) == 0 for v in g.vertices())
