"""Unit tests for candidate-set generation (Algorithm 5)."""

from repro.core import Gpsi, UNMAPPED, candidate_set, combination_consistent
from repro.core.edge_index import ExactEdgeIndex, NullEdgeIndex
from repro.graph import Graph, OrderedGraph, complete_graph, star_graph
from repro.pattern import PatternGraph, square, triangle


def make_env(graph):
    ordered = OrderedGraph(graph)
    return ordered, ExactEdgeIndex(graph)


class TestDegreeRule:
    def test_low_degree_candidates_pruned(self):
        # star: leaves have degree 1; pattern vertex needs degree 2.
        g = star_graph(5)
        ordered, index = make_env(g)
        pattern = triangle()  # every pattern vertex has degree 2
        gpsi = Gpsi.initial(pattern, 0, 0)  # hub mapped to v0
        cands = candidate_set(gpsi, 1, 0, 0, pattern, ordered, index)
        assert cands == []  # all leaves fail deg >= 2


class TestPartialOrderRule:
    def test_rank_bounds_applied(self):
        g = complete_graph(4)
        ordered, index = make_env(g)
        pattern = triangle()  # order v1<v2<v3
        # map v1 (lowest) to data vertex 2: candidates for v2 must rank
        # above 2 -> only vertex 3 (K4 order follows ids).
        gpsi = Gpsi.initial(pattern, 0, 2)
        cands = candidate_set(gpsi, 1, 0, 2, pattern, ordered, index)
        assert cands == [3]

    def test_upper_bound_from_mapped_above(self):
        g = complete_graph(5)
        ordered, index = make_env(g)
        pattern = triangle()
        # v1 -> 0 and v3 -> 2 mapped; candidates for v2 must lie strictly
        # between them: only vertex 1.
        gpsi = Gpsi((0, UNMAPPED, 2), black=0, next_vertex=0)
        cands = candidate_set(gpsi, 1, 0, 0, pattern, ordered, index)
        assert cands == [1]

    def test_contradictory_bounds_empty(self):
        g = complete_graph(5)
        ordered, index = make_env(g)
        pattern = triangle()
        # v1 -> 4 (highest rank): nothing ranks above it for v2.
        gpsi = Gpsi.initial(pattern, 0, 4)
        assert candidate_set(gpsi, 1, 0, 4, pattern, ordered, index) == []


class TestInjectivity:
    def test_used_vertices_excluded(self):
        g = complete_graph(4)
        ordered, index = make_env(g)
        pattern = PatternGraph(3, [(0, 1), (1, 2)])  # path, no order
        gpsi = Gpsi((0, 1, UNMAPPED), black=0b01, next_vertex=1)
        cands = candidate_set(gpsi, 2, 1, 1, pattern, ordered, index)
        assert 0 not in cands and 1 not in cands
        assert set(cands) == {2, 3}


class TestConnectivityRule:
    def test_gray_neighbor_edge_checked(self):
        # path data graph 0-1-2-3-4: candidate for a white vertex adjacent
        # to a gray one must connect to the gray's image.  (The extra edge
        # (3,4) keeps vertex 3 past the degree rule so the connectivity
        # rule is what prunes it.)
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        ordered, index = make_env(g)
        # pattern: triangle-free square chunk -> use square's v3 (white),
        # adjacent to grays v2 and v4.
        pattern = square().with_partial_order(())  # drop order: isolate rule
        # v1->1 black, v2->0 gray, v4->2 gray; candidates for v3 from N(0)
        gpsi = Gpsi((1, 0, UNMAPPED, 2), black=0b0001, next_vertex=1)
        cands = candidate_set(gpsi, 2, 1, 0, pattern, ordered, index)
        # N(0) = {1}; 1 is used -> empty
        assert cands == []
        # now expand from v4's side: N(2) = {1, 3}; 1 used; 3 must have an
        # edge to map(v2)=0 which does not exist -> pruned by the index.
        gpsi2 = Gpsi((1, 0, UNMAPPED, 2), black=0b0001, next_vertex=3)
        cands2 = candidate_set(gpsi2, 2, 3, 2, pattern, ordered, index)
        assert cands2 == []
        assert index.pruned >= 1

    def test_null_index_skips_connectivity(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        ordered = OrderedGraph(g)
        pattern = square().with_partial_order(())
        gpsi = Gpsi((1, 0, UNMAPPED, 2), black=0b0001, next_vertex=3)
        cands = candidate_set(gpsi, 2, 3, 2, pattern, ordered, NullEdgeIndex())
        # without the index the invalid candidate 3 survives
        assert cands == [3]


class TestCombinationConsistency:
    def test_distinctness(self):
        g = complete_graph(5)
        ordered, index = make_env(g)
        pattern = square().with_partial_order(())
        assert not combination_consistent([2, 2], [1, 3], pattern, ordered, index)

    def test_cross_partial_order(self):
        g = complete_graph(5)
        ordered, index = make_env(g)
        pattern = square()  # order includes (1,3): v2 < v4
        assert combination_consistent([1, 3], [1, 3], pattern, ordered, index)
        assert not combination_consistent([3, 1], [1, 3], pattern, ordered, index)

    def test_cross_edge_via_index(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        ordered, index = make_env(g)
        # pattern where the two new whites are adjacent
        pattern = triangle().with_partial_order(())
        assert combination_consistent([1, 2], [1, 2], pattern, ordered, index)
        assert not combination_consistent([0, 3], [1, 2], pattern, ordered, index)
