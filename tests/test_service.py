"""Tests for the resident query service (repro.service).

Most tests go through :func:`repro.service.running_service` — a real
``ThreadingHTTPServer`` on an ephemeral port — so the whole wire path
(JSON spec validation, admission control, job lifecycle, trace and
metrics endpoints) is exercised, not just the Python objects.
"""

import json
import threading
import time

import pytest

from repro.core import PSgL
from repro.exceptions import (
    AdmissionError,
    BudgetExceededError,
    JobCancelled,
    QuerySpecError,
)
from repro.graph import complete_graph, erdos_renyi
from repro.obs import SCHEMA
from repro.pattern import paper_patterns
from repro.service import (
    Job,
    JobManager,
    MetricsRegistry,
    ResourceBudget,
    ResultCache,
    cache_key,
    parse_metrics,
    running_service,
)


@pytest.fixture(scope="module")
def service_pair():
    """One shared live service over K12 for the read-mostly tests."""
    with running_service(
        complete_graph(12), allow_test_hooks=True, max_inflight=2
    ) as pair:
        yield pair


class TestLifecycle:
    def test_health_and_info(self, service_pair):
        client, service = service_pair
        assert client.health() == {"status": "ok"}
        info = client.info()
        assert info["graph"]["vertices"] == 12
        assert info["graph"]["fingerprint"] == service.context.fingerprint

    def test_counts_match_batch_driver(self, service_pair):
        client, _ = service_pair
        graph = complete_graph(12)
        for name, pattern in paper_patterns().items():
            expected = PSgL(graph, num_workers=4).count(pattern)
            job = client.count(pattern=name)
            assert job["state"] == "completed"
            assert job["result"]["count"] == expected, name

    def test_job_status_fields(self, service_pair):
        client, _ = service_pair
        job = client.count(pattern="PG1", seed=123)
        assert job["id"] >= 1
        assert job["spec"]["seed"] == 123
        assert job["queue_seconds"] >= 0
        assert job["run_seconds"] >= 0
        assert job["result"]["supersteps"] >= 2

    def test_result_endpoint(self, service_pair):
        client, _ = service_pair
        job = client.count(pattern="PG2", seed=77)
        res = client.result(job["id"])
        assert res["result"]["count"] == job["result"]["count"]

    def test_unknown_job_404(self, service_pair):
        client, _ = service_pair
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="404"):
            client.job(999999)

    def test_collect_instances_roundtrip(self, service_pair):
        client, _ = service_pair
        job = client.count(pattern="PG1", collect_instances=True)
        instances = job["result"]["instances"]
        assert len(instances) == job["result"]["count"]
        assert all(len(m) == 3 for m in instances)


class TestSpecValidation:
    def test_unknown_field_rejected(self, service_pair):
        client, _ = service_pair
        with pytest.raises(QuerySpecError, match="unknown spec fields"):
            client.submit(pattern="PG1", bogus=1)

    def test_pattern_required(self, service_pair):
        client, _ = service_pair
        with pytest.raises(QuerySpecError, match="exactly one"):
            client.submit(workers=2)

    def test_unknown_pattern_rejected(self, service_pair):
        client, _ = service_pair
        with pytest.raises(QuerySpecError, match="unknown pattern"):
            client.submit(pattern="PG99")

    def test_bad_budget_rejected(self, service_pair):
        client, _ = service_pair
        with pytest.raises(QuerySpecError, match="budget"):
            client.submit(pattern="PG1", budget={"max_meals": 3})
        with pytest.raises(QuerySpecError, match="> 0"):
            client.submit(pattern="PG1", budget={"max_supersteps": -1})

    def test_bad_backend_rejected(self, service_pair):
        client, _ = service_pair
        with pytest.raises(QuerySpecError, match="backend"):
            client.submit(pattern="PG1", backend="quantum")

    def test_test_hooks_gated(self):
        with running_service(complete_graph(5)) as (client, _):
            with pytest.raises(QuerySpecError, match="_hold_seconds"):
                client.submit(pattern="PG1", _hold_seconds=1)


class TestResultCache:
    def test_repeat_query_served_from_cache(self):
        with running_service(complete_graph(10)) as (client, service):
            first = client.count(pattern="PG4")
            assert not first["cached"]
            second = client.submit(pattern="PG4")
            assert second["cached"] and second["state"] == "completed"
            assert second["result"] == first["result"]
            assert service.cache.stats()["hits"] == 1

    def test_isomorphic_relabeling_hits(self):
        # PG1 and a scrambled triangle spelling are one cache entry.
        with running_service(complete_graph(8)) as (client, _):
            first = client.count(pattern="PG1")
            second = client.count(pattern_edges="3-1, 2-3, 1-2")
            assert second["cached"]
            assert second["result"]["count"] == first["result"]["count"]

    def test_params_key_separately(self):
        with running_service(complete_graph(8)) as (client, _):
            client.count(pattern="PG1", seed=0)
            other_seed = client.count(pattern="PG1", seed=1)
            assert not other_seed["cached"]

    def test_zero_budget_disables_caching(self):
        with running_service(
            complete_graph(8), cache=ResultCache(max_bytes=0)
        ) as (client, _):
            client.count(pattern="PG1")
            assert not client.count(pattern="PG1")["cached"]


class TestBudgetsAndCancel:
    def test_over_budget_job_killed_with_structured_error(self, service_pair):
        client, _ = service_pair
        job = client.count(pattern="PG4", budget={"max_supersteps": 1}, seed=5)
        assert job["state"] == "killed"
        assert job["error"]["type"] == "BudgetExceededError"
        assert job["error"]["resource"] == "supersteps"
        assert job["error"]["budget"] == 1

    def test_memory_budget_kill(self, service_pair):
        client, _ = service_pair
        job = client.count(pattern="PG4", budget={"max_live_gpsis": 2}, seed=6)
        assert job["state"] == "killed"
        assert job["error"]["resource"] == "gpsi_memory"

    def test_kill_leaves_other_inflight_jobs_alone(self, service_pair):
        client, _ = service_pair
        good = client.submit(pattern="PG5", seed=9)
        bad = client.submit(pattern="PG4", budget={"max_supersteps": 1}, seed=9)
        done_bad = client.wait(bad["id"])
        done_good = client.wait(good["id"])
        assert done_bad["state"] == "killed"
        assert done_good["state"] == "completed"
        expected = PSgL(complete_graph(12), num_workers=4, seed=9).count(
            paper_patterns()["PG5"]
        )
        assert done_good["result"]["count"] == expected

    def test_default_budget_applies_underneath(self):
        with running_service(
            complete_graph(10),
            default_budget=ResourceBudget(max_supersteps=1),
        ) as (client, _):
            job = client.count(pattern="PG4")
            assert job["state"] == "killed"
            # ...but an explicit laxer budget on the request wins its axis.
            ok = client.count(pattern="PG4", budget={"max_supersteps": 10})
            assert ok["state"] == "completed"

    def test_cancel_running_job(self, service_pair):
        client, _ = service_pair
        held = client.submit(pattern="PG2", _hold_seconds=10, seed=31)
        deadline = time.monotonic() + 5
        while client.job(held["id"])["state"] == "queued":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.01)
        assert client.cancel(held["id"])["cancelled"]
        done = client.wait(held["id"])
        assert done["state"] == "cancelled"
        assert done["error"]["type"] == "JobCancelled"

    def test_cancel_terminal_job_is_noop(self, service_pair):
        client, _ = service_pair
        job = client.count(pattern="PG3", seed=41)
        assert not client.cancel(job["id"])["cancelled"]


class TestAdmissionControl:
    def test_queue_full_gets_429(self):
        with running_service(
            complete_graph(8),
            allow_test_hooks=True,
            max_inflight=1,
            max_queue_depth=2,
        ) as (client, _):
            held = [
                client.submit(pattern="PG2", _hold_seconds=5, seed=s)
                for s in range(3)  # 1 running + 2 queued
            ]
            with pytest.raises(AdmissionError, match="queue full"):
                client.submit(pattern="PG2", _hold_seconds=5, seed=99)
            for h in held:
                client.cancel(h["id"])
            for h in held:
                assert client.wait(h["id"])["state"] == "cancelled"
            metrics = client.metrics()
            assert metrics["psgl_service_admission_rejected_total"] == 1

    def test_cache_hits_bypass_admission(self):
        with running_service(
            complete_graph(8),
            allow_test_hooks=True,
            max_inflight=1,
            max_queue_depth=1,
        ) as (client, _):
            client.count(pattern="PG1")  # populate the cache
            held = [
                client.submit(pattern="PG2", _hold_seconds=5, seed=s)
                for s in range(2)  # saturate pool + queue
            ]
            hit = client.submit(pattern="PG1")  # full queue, still served
            assert hit["cached"] and hit["state"] == "completed"
            for h in held:
                client.cancel(h["id"])
                client.wait(h["id"])


class TestPriorityLanes:
    def test_interactive_preempts_batch_in_queue(self):
        with running_service(
            complete_graph(8), allow_test_hooks=True, max_inflight=1
        ) as (client, service):
            blocker = client.submit(pattern="PG1", _hold_seconds=5, seed=1)
            deadline = time.monotonic() + 5
            while client.job(blocker["id"])["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            batch = client.submit(pattern="PG2", priority="batch", seed=2)
            interactive = client.submit(pattern="PG3", seed=3)
            client.cancel(blocker["id"])
            done_i = client.wait(interactive["id"])
            done_b = client.wait(batch["id"])
            assert done_i["state"] == done_b["state"] == "completed"
            # Submitted second, started first: the interactive lane drains
            # before the batch lane.
            assert done_i["started_at"] < done_b["started_at"]

    def test_unknown_priority_rejected(self, service_pair):
        client, _ = service_pair
        with pytest.raises(QuerySpecError, match="priority"):
            client.submit(pattern="PG1", priority="vip")


class TestMetricsEndpoint:
    def test_scrape_parses_and_counts(self):
        with running_service(complete_graph(8)) as (client, _):
            client.count(pattern="PG1")
            client.count(pattern="PG1")  # hit
            text = client.metrics_text()
            assert "# TYPE psgl_service_jobs_total counter" in text
            values = parse_metrics(text)
            assert values['psgl_service_jobs_total{state="completed"}'] == 2
            assert values["psgl_service_cache_hits_total"] == 1
            assert values["psgl_service_cache_misses_total"] == 1
            assert values["psgl_service_cache_entries"] == 1
            assert values["psgl_service_job_wall_seconds_count"] == 1
            assert values['psgl_service_http_requests_total{method="POST",code="202"}'] == 1
            assert values['psgl_service_http_requests_total{method="POST",code="200"}'] == 1


class TestTraceEndpoint:
    def test_trace_stream_is_valid_jsonl(self):
        with running_service(complete_graph(8)) as (client, _):
            job = client.count(pattern="PG1")
            lines = client.trace_text(job["id"]).strip().splitlines()
            header = json.loads(lines[0])
            assert header["schema"] == SCHEMA
            assert header["meta"]["spec"]["pattern"] == "PG1"
            events = [json.loads(line) for line in lines[1:]]
            kinds = {e["kind"] for e in events}
            assert {"job", "superstep", "worker", "barrier"} <= kinds

    def test_trace_report(self):
        with running_service(complete_graph(8)) as (client, _):
            job = client.count(pattern="PG2")
            report = client.trace_report(job["id"])
            assert "per-worker totals" in report

    def test_untraced_service_404s(self):
        with running_service(complete_graph(8), trace_jobs=False) as (
            client,
            _,
        ):
            job = client.count(pattern="PG1")
            from repro.exceptions import ReproError

            with pytest.raises(ReproError, match="404"):
                client.trace_text(job["id"])


class TestJobManagerUnit:
    def test_states_and_monotonic_ids(self):
        manager = JobManager(runner=lambda job: {"ok": True}, max_inflight=1)
        try:
            jobs = [manager.submit({"n": i}) for i in range(3)]
            assert [j.id for j in jobs] == [1, 2, 3]
            for j in jobs:
                assert manager.wait(j.id).state == "completed"
                assert j.result == {"ok": True}
        finally:
            manager.close()

    def test_runner_exceptions_classified(self):
        def runner(job: Job):
            kind = job.spec["kind"]
            if kind == "budget":
                raise BudgetExceededError("x", resource="supersteps")
            if kind == "cancel":
                raise JobCancelled("y")
            raise ValueError("z")

        manager = JobManager(runner=runner, max_inflight=1)
        try:
            outcomes = {
                kind: manager.wait(manager.submit({"kind": kind}).id).state
                for kind in ("budget", "cancel", "boom")
            }
            assert outcomes == {
                "budget": "killed",
                "cancel": "cancelled",
                "boom": "failed",
            }
            boom = manager.list_jobs()[-1]
            assert boom.error == {"type": "ValueError", "message": "z"}
        finally:
            manager.close()

    def test_close_cancels_queued_jobs(self):
        release = threading.Event()

        def runner(job: Job):
            release.wait(5)
            return {}

        manager = JobManager(runner=runner, max_inflight=1)
        running = manager.submit({})
        deadline = time.monotonic() + 5
        while running.state == "queued":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.005)
        queued = manager.submit({})  # pool busy → must sit in the lane
        threading.Timer(0.05, release.set).start()
        manager.close()
        assert queued.state == "cancelled"
        assert running.state == "completed"
        with pytest.raises(AdmissionError):
            manager.submit({})


class TestResultCacheUnit:
    def test_lru_eviction_by_entries(self):
        cache = ResultCache(max_entries=2)
        keys = [cache_key("fp", f"p{i}", "s", {}) for i in range(3)]
        for key in keys:
            cache.put(key, {"k": str(key)})
        assert cache.get(keys[0]) is None  # evicted
        assert cache.get(keys[2]) is not None
        assert cache.evictions == 1

    def test_byte_budget_eviction(self):
        payload = {"data": "x" * 100}
        size = len(json.dumps(payload, separators=(",", ":")).encode())
        cache = ResultCache(max_bytes=2 * size + 1)
        for i in range(3):
            cache.put(cache_key("fp", f"p{i}", "s", {}), payload)
        assert len(cache) == 2
        assert cache.bytes_used <= cache.max_bytes

    def test_oversized_payload_refused(self):
        cache = ResultCache(max_bytes=10)
        assert not cache.put(cache_key("fp", "p", "s", {}), {"x": "y" * 100})
        assert len(cache) == 0

    def test_get_moves_to_front(self):
        cache = ResultCache(max_entries=2)
        k1, k2, k3 = (cache_key("fp", f"p{i}", "s", {}) for i in range(3))
        cache.put(k1, {})
        cache.put(k2, {})
        cache.get(k1)  # refresh k1 → k2 is now LRU
        cache.put(k3, {})
        assert cache.get(k2) is None
        assert cache.get(k1) is not None


class TestResourceBudgetUnit:
    def test_from_json_validates(self):
        budget = ResourceBudget.from_json(
            {"max_supersteps": 3, "max_wall_seconds": 1.5}
        )
        assert budget.max_supersteps == 3
        assert budget.max_wall_seconds == 1.5
        assert ResourceBudget.from_json(None) == ResourceBudget()

    def test_merged_over_fills_only_unset_axes(self):
        base = ResourceBudget(max_supersteps=5, max_live_gpsis=100)
        request = ResourceBudget(max_supersteps=2)
        merged = request.merged_over(base)
        assert merged.max_supersteps == 2
        assert merged.max_live_gpsis == 100

    def test_psgl_kwargs_shape(self):
        kwargs = ResourceBudget(max_supersteps=4).psgl_kwargs()
        assert kwargs == {
            "memory_budget": None,
            "worker_memory_budget": None,
            "superstep_budget": 4,
            "wall_budget_seconds": None,
        }


class TestMetricsUnit:
    def test_render_parse_roundtrip(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", labelnames=("kind",))
        gauge = registry.gauge("g", "help")
        hist = registry.histogram("h_seconds", "help", buckets=(0.1, 1.0))
        counter.labels(kind="a").inc()
        counter.labels(kind="a").inc()
        gauge.set(4.5)
        hist.observe(0.05)
        hist.observe(2.0)
        values = parse_metrics(registry.render())
        assert values['c_total{kind="a"}'] == 2
        assert values["g"] == 4.5
        assert values['h_seconds_bucket{le="0.1"}'] == 1
        assert values['h_seconds_bucket{le="+Inf"}'] == 2
        assert values["h_seconds_count"] == 2

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dup", "x")
        with pytest.raises(ValueError, match="duplicate"):
            registry.counter("dup", "y")

    def test_counters_only_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c", "x").inc(-1)


class TestProcessBackendOverHTTP:
    def test_process_backend_query_matches_serial(self):
        graph = erdos_renyi(40, 0.15, seed=2)
        with running_service(graph) as (client, _):
            serial = client.count(pattern="PG1")
            process = client.count(
                pattern="PG1", backend="process", workers=2, seed=1
            )
            assert process["state"] == "completed"
            assert process["result"]["count"] == serial["result"]["count"]
