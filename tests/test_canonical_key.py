"""Tests for pattern canonical keys and graph fingerprints — the two
invariants the service's result cache is keyed on."""

import random

import pytest

from repro.graph import Graph, complete_graph, erdos_renyi
from repro.pattern import PatternGraph, paper_patterns, triangle
from repro.pattern.automorphism import canonical_labeling


def relabel(pattern: PatternGraph, perm) -> PatternGraph:
    """The same abstract pattern under vertex relabeling ``perm``."""
    return PatternGraph(
        pattern.num_vertices,
        [(perm[u], perm[v]) for u, v in pattern.edges()],
        [(perm[a], perm[b]) for a, b in pattern.partial_order],
        name=f"{pattern.name}-relabelled",
    )


class TestCanonicalKeyInvariance:
    @pytest.mark.parametrize("name", ["PG1", "PG2", "PG3", "PG4", "PG5"])
    def test_invariant_under_relabelings(self, name):
        pattern = paper_patterns()[name]
        rng = random.Random(7)
        key = pattern.canonical_key()
        for _ in range(8):
            perm = list(range(pattern.num_vertices))
            rng.shuffle(perm)
            assert relabel(pattern, perm).canonical_key() == key

    def test_distinct_across_catalog(self):
        keys = {p.canonical_key() for p in paper_patterns().values()}
        assert len(keys) == 5

    def test_order_distinguishes(self):
        # A partial order restricts which instances are listed, so an
        # ordered triangle must never share a cache entry with the raw one.
        ordered = triangle()
        raw = PatternGraph(3, list(ordered.edges()), name="raw-triangle")
        assert ordered.canonical_key() != raw.canonical_key()

    def test_edge_order_irrelevant(self):
        a = PatternGraph(3, [(0, 1), (1, 2), (0, 2)], [(0, 1)])
        b = PatternGraph(3, [(0, 2), (0, 1), (1, 2)], [(0, 1)])
        assert a.canonical_key() == b.canonical_key()

    def test_name_irrelevant(self):
        a = PatternGraph(3, [(0, 1), (1, 2), (0, 2)], name="x")
        b = PatternGraph(3, [(0, 1), (1, 2), (0, 2)], name="y")
        assert a.canonical_key() == b.canonical_key()

    def test_different_structure_differs(self):
        path3 = PatternGraph(3, [(0, 1), (1, 2)])
        tri = PatternGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert path3.canonical_key() != tri.canonical_key()

    def test_canonical_form_is_cached_and_stable(self):
        p = paper_patterns()["PG3"]
        assert p.canonical_form() is p.canonical_form()
        n, edges, order = p.canonical_form()
        assert n == 4
        assert edges == tuple(sorted(edges))
        assert all(u < v for u, v in edges)


class TestCanonicalLabeling:
    def test_is_a_permutation(self):
        for pattern in paper_patterns().values():
            perm = canonical_labeling(pattern)
            assert sorted(perm) == list(range(pattern.num_vertices))

    def test_relabeled_forms_coincide(self):
        pattern = paper_patterns()["PG5"]
        perm = [2, 0, 4, 1, 3]
        assert (
            relabel(pattern, perm).canonical_form() == pattern.canonical_form()
        )


class TestGraphFingerprint:
    def test_stable_across_identical_builds(self):
        a = erdos_renyi(30, 0.2, seed=3)
        b = erdos_renyi(30, 0.2, seed=3)
        assert a.fingerprint() == b.fingerprint()

    def test_differs_across_graphs(self):
        assert (
            erdos_renyi(30, 0.2, seed=3).fingerprint()
            != erdos_renyi(30, 0.2, seed=4).fingerprint()
        )
        assert (
            complete_graph(5).fingerprint() != complete_graph(6).fingerprint()
        )

    def test_csr_roundtrip_preserves_fingerprint(self):
        g = erdos_renyi(25, 0.3, seed=9)
        indptr, indices = g.to_csr()
        rebuilt = Graph.from_csr(indptr, indices)
        assert rebuilt.fingerprint() == g.fingerprint()

    def test_hashable(self):
        g = complete_graph(6)
        assert hash(g) == hash(g)
        assert isinstance(hash(g), int)
