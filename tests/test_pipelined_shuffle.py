"""Pipelined shuffle: chunk streaming, parity with strict, guards.

The pipelined mode may change *when* packed chunks cross the barrier —
mid-compute, at watermarks, interleaved across senders — but never
*what* arrives.  These tests pin that at three levels: the
:class:`ChunkedColumnarStore` surface chunk-for-chunk against
:class:`ColumnarMessageStore`, end-to-end listing runs bit-for-bit
against the strict reference on every paper pattern and backend
(including spawn), and the chunk trace events that make the overlap
observable.
"""

import numpy as np
import pytest

from repro.bsp import (
    BSPEngine,
    ChunkedColumnarStore,
    ColumnarMessageStore,
    GpsiBatch,
    Message,
    MessageStore,
    SHUFFLE_MODES,
)
from repro.core import Gpsi, PSgL, UNMAPPED
from repro.exceptions import EngineError
from repro.graph import Graph, hash_partition
from repro.graph.generators import chung_lu_power_law, erdos_renyi
from repro.obs import Tracer
from repro.pattern import paper_patterns
from repro.runtime import ProcessExecutor

GRAPHS = {
    "er": erdos_renyi(28, 0.25, seed=13),
    "powerlaw": chung_lu_power_law(30, gamma=2.5, avg_degree=4, seed=5),
}

#: Tiny watermark so even the 28-vertex graphs stream many chunks per
#: superstep — the parity tests exercise real interleaving, not the
#: degenerate everything-in-the-residual case.
TINY_CHUNK = 4


def run_listing(graph, pattern, backend, procs=None, **kwargs):
    driver = PSgL(
        graph,
        num_workers=4,
        strategy="WA,0.5",
        seed=3,
        backend=backend,
        procs=procs,
        wire="columnar",
        **kwargs,
    )
    return driver.run(pattern, collect_instances=True)


def assert_bit_parity(reference, other):
    """Byte-identical observable outputs — including the exact per-step
    wire-byte ledger, which pipelined mode must preserve because chunks
    plus residual repack precisely the strict outboxes."""
    assert other.count == reference.count
    assert sorted(other.instances) == sorted(reference.instances)
    assert other.supersteps == reference.supersteps
    assert other.gpsi_by_vertex == reference.gpsi_by_vertex
    assert other.index_queries == reference.index_queries
    assert other.index_pruned == reference.index_pruned
    for step_ref, step_other in zip(reference.ledger.steps, other.ledger.steps):
        assert step_other.worker_compute_calls == step_ref.worker_compute_calls
        assert step_other.worker_messages == step_ref.worker_messages
        assert step_other.worker_cost == step_ref.worker_cost
        assert step_other.worker_wire_bytes == step_ref.worker_wire_bytes
    assert other.ledger.peak_live_messages == reference.ledger.peak_live_messages


class TestPipelinedParity:
    @pytest.mark.parametrize("pattern_name", sorted(paper_patterns()))
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_matches_strict_on_every_pattern(self, backend, pattern_name):
        graph = GRAPHS["er"]
        pattern = paper_patterns()[pattern_name]
        reference = run_listing(graph, pattern, "serial", shuffle="strict")
        pipelined = run_listing(
            graph,
            pattern,
            backend,
            procs=2 if backend != "serial" else None,
            shuffle="pipelined",
            chunk_gpsis=TINY_CHUNK,
        )
        assert_bit_parity(reference, pipelined)

    @pytest.mark.parametrize("pattern_name", ["PG2", "PG3"])
    def test_byte_watermark_parity(self, pattern_name):
        """A bytes-denominated watermark chunks differently but delivers
        identically (powerlaw graph: skewed outbox sizes)."""
        graph = GRAPHS["powerlaw"]
        pattern = paper_patterns()[pattern_name]
        reference = run_listing(graph, pattern, "serial", shuffle="strict")
        pipelined = run_listing(
            graph,
            pattern,
            "thread",
            procs=3,
            shuffle="pipelined",
            chunk_bytes=256,
        )
        assert_bit_parity(reference, pipelined)

    def test_process_parity_under_spawn(self):
        """Chunks must survive a spawn-fresh interpreter: the bounded
        mp.Queue pickles every streamed chunk, and the drain protocol
        must not lose any against the feeder thread's asynchrony."""
        graph = GRAPHS["er"]
        pattern = paper_patterns()["PG2"]
        reference = run_listing(graph, pattern, "serial", shuffle="strict")
        executor = ProcessExecutor(procs=2, start_method="spawn")
        pipelined = PSgL(
            graph,
            num_workers=4,
            strategy="WA,0.5",
            seed=3,
            backend=executor,
            wire="columnar",
            shuffle="pipelined",
            chunk_gpsis=TINY_CHUNK,
        ).run(pattern, collect_instances=True)
        assert_bit_parity(reference, pipelined)

    def test_default_watermark_applied(self):
        from repro.bsp import DEFAULT_CHUNK_GPSIS

        engine = BSPEngine(
            Graph(4, [(0, 1), (1, 2)]),
            hash_partition(4, 2),
            wire="columnar",
            shuffle="pipelined",
        )
        assert engine.chunk_gpsis == DEFAULT_CHUNK_GPSIS
        assert engine.chunk_bytes is None


class TestEngineGuards:
    def test_unknown_shuffle_mode_rejected(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        with pytest.raises(EngineError, match="shuffle mode"):
            BSPEngine(graph, hash_partition(4, 2), shuffle="chaotic")
        assert SHUFFLE_MODES == ("strict", "pipelined")

    def test_pipelined_requires_columnar_wire(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        with pytest.raises(EngineError, match="wire='columnar'"):
            BSPEngine(graph, hash_partition(4, 2), wire="object", shuffle="pipelined")

    def test_watermarks_refused_under_strict(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        with pytest.raises(EngineError, match="pipelined"):
            BSPEngine(graph, hash_partition(4, 2), wire="columnar", chunk_gpsis=64)
        with pytest.raises(EngineError, match="pipelined"):
            BSPEngine(graph, hash_partition(4, 2), wire="columnar", chunk_bytes=4096)

    def test_nonpositive_watermark_rejected(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        with pytest.raises(EngineError, match="chunk_gpsis"):
            BSPEngine(
                graph,
                hash_partition(4, 2),
                wire="columnar",
                shuffle="pipelined",
                chunk_gpsis=0,
            )


# ----------------------------------------------------------------------
# ChunkedColumnarStore unit semantics
# ----------------------------------------------------------------------
def g(i, nxt=1):
    return Gpsi((i, UNMAPPED, i + 100), 0b001, nxt)


def outbox_batches():
    """Two workers' outboxes as packed batches (interleaved dests)."""
    w0, w1 = MessageStore(), MessageStore()
    w0.add(Message(5, g(0)))
    w0.add(Message(2, g(1)))
    w0.add(Message(5, g(2)))
    w1.add(Message(2, g(3)))
    w1.add(Message(9, g(4)))
    w1.add(Message(5, g(5)))
    return GpsiBatch.pack(w0.as_batch()), GpsiBatch.pack(w1.as_batch())


def split_rows(batch, size):
    """Slice a packed batch into ``size``-row chunks, in send order."""
    chunks = []
    for start in range(0, len(batch), size):
        rows = np.arange(start, min(start + size, len(batch)))
        chunks.append(GpsiBatch(batch.dest[rows], batch.columns.take(rows)))
    return chunks


OWNERS = np.zeros(10, dtype=np.int64)
OWNERS[5] = 1  # v5 on worker 1; v2, v9 on worker 0


def reference_store():
    b0, b1 = outbox_batches()
    col = ColumnarMessageStore()
    col.merge_batch(b0)
    col.merge_batch(b1)
    return col


class TestChunkedStoreSemantics:
    def test_out_of_order_chunks_deliver_in_strict_order(self):
        """Chunks arriving in scrambled (sender, seq) order must deliver
        exactly what the strict store delivers for the same outboxes."""
        b0, b1 = outbox_batches()
        chunks = [(0, i, c) for i, c in enumerate(split_rows(b0, 1))]
        chunks += [(1, i, c) for i, c in enumerate(split_rows(b1, 2))]
        store = ChunkedColumnarStore(OWNERS, 2)
        for sender, seq, chunk in reversed(chunks):  # worst-case arrival
            store.merge_chunk(sender, seq, chunk)
        ref = reference_store()
        assert len(store) == len(ref) == 6
        assert store.wire_bytes == b0.nbytes + b1.nbytes
        assert store.destinations() == ref.destinations() == [5, 2, 9]
        for vertex in (5, 2, 9):
            assert store.take(vertex) == ref.take(vertex)
        assert len(store) == 0 and not store

    def test_build_worker_batches_matches_strict_store(self):
        b0, b1 = outbox_batches()
        store = ChunkedColumnarStore(OWNERS, 2)
        for seq, chunk in enumerate(split_rows(b0, 2)):
            store.merge_chunk(0, seq, chunk)
        store.merge_chunk(1, 0, b1)
        ref = reference_store()
        got = store.build_worker_batches(OWNERS, 2)
        expected = ref.build_worker_batches(OWNERS, 2)
        for batch_got, batch_ref in zip(got, expected):
            if batch_ref == []:
                assert batch_got == []
                continue
            materialized = batch_got.materialize()
            assert [v for v, _ in materialized] == [
                v for v, _ in batch_ref.materialize()
            ]
            for (_, payloads_got), (_, payloads_ref) in zip(
                materialized, batch_ref.materialize()
            ):
                assert payloads_got == payloads_ref

    def test_duplicate_seq_rejected(self):
        b0, _ = outbox_batches()
        store = ChunkedColumnarStore(OWNERS, 2)
        store.merge_chunk(0, 0, b0)
        with pytest.raises(EngineError, match="duplicate"):
            store.merge_chunk(0, 0, b0)

    def test_seq_gap_fails_at_finalize(self):
        b0, _ = outbox_batches()
        store = ChunkedColumnarStore(OWNERS, 2)
        store.merge_chunk(0, 0, b0)
        store.merge_chunk(0, 2, b0)  # seq 1 never arrives
        with pytest.raises(EngineError, match="gaps"):
            store.finalize()

    def test_chunk_after_finalize_rejected(self):
        b0, _ = outbox_batches()
        store = ChunkedColumnarStore(OWNERS, 2)
        store.merge_chunk(0, 0, b0)
        store.finalize()
        with pytest.raises(EngineError, match="finalized"):
            store.merge_chunk(0, 1, b0)

    def test_merge_batch_surface_guarded(self):
        b0, _ = outbox_batches()
        store = ChunkedColumnarStore(OWNERS, 2)
        with pytest.raises(EngineError, match="merge_chunk"):
            store.merge_batch(b0)
        # An empty residual is tolerated (the strict code path no-ops).
        store.merge_batch(GpsiBatch.pack([]))

    def test_empty_chunk_counts_toward_sequence_only(self):
        """An empty chunk must keep the seq contiguous without adding
        rows, bytes, or activating anything."""
        b0, _ = outbox_batches()
        store = ChunkedColumnarStore(OWNERS, 2)
        store.merge_chunk(0, 0, GpsiBatch.pack([]))
        store.merge_chunk(0, 1, b0)
        store.finalize()
        assert len(store) == len(b0)
        assert store.chunks_merged == 1
        assert store.wire_bytes == b0.nbytes


class TestChunkTraceEvents:
    def run_traced(self, **kwargs):
        tracer = Tracer()
        PSgL(
            GRAPHS["er"],
            num_workers=4,
            seed=3,
            wire="columnar",
            trace=tracer,
            **kwargs,
        ).run(paper_patterns()["PG2"])
        return tracer

    def test_flush_and_deliver_events_present(self):
        tracer = self.run_traced(
            backend="thread", procs=2, shuffle="pipelined", chunk_gpsis=TINY_CHUNK
        )
        flushes = tracer.by_kind("chunk_flush")
        delivers = tracer.by_kind("chunk_deliver")
        assert flushes, "tiny watermark must stream at least one chunk"
        assert delivers
        for event in flushes:
            assert event.data["rows"] >= 1
            assert event.data["nbytes"] > 0
            assert event.data["seq"] >= 0
            assert event.wall_ms is not None and event.wall_ms >= 0
        # Every worker's final below-watermark remainder arrives as a
        # residual deliver at the barrier.
        assert any(e.data.get("residual") for e in delivers)

    def test_barrier_pins_chunk_size_bound(self):
        tracer = self.run_traced(
            backend="thread", procs=2, shuffle="pipelined", chunk_gpsis=TINY_CHUNK
        )
        barriers = tracer.by_kind("barrier")
        flushes = tracer.by_kind("chunk_flush")
        assert barriers and flushes
        for event in barriers:
            assert "merge_ms" in event.data
            assert "chunks" in event.data and "max_send_bytes" in event.data
        # The watermark bound: every streamed chunk is either within the
        # row watermark or a single oversized send flushed alone (whose
        # size is pinned by the barrier's ``max_send_bytes``).
        max_send = max(b.data["max_send_bytes"] for b in barriers)
        for event in flushes:
            assert (
                event.data["rows"] <= TINY_CHUNK
                or event.data["nbytes"] <= max_send
            )
        max_chunk = max(b.data["max_chunk_bytes"] for b in barriers)
        per_row = max(e.data["nbytes"] / e.data["rows"] for e in flushes)
        assert max_chunk <= max(TINY_CHUNK * per_row, max_send)

    def test_superstep_records_build_ms(self):
        tracer = self.run_traced(shuffle="pipelined", chunk_gpsis=TINY_CHUNK)
        for event in tracer.by_kind("superstep"):
            assert event.data["build_ms"] >= 0

    def test_strict_trace_has_no_chunk_events(self):
        tracer = self.run_traced(shuffle="strict")
        assert tracer.by_kind("chunk_flush") == []
        assert tracer.by_kind("chunk_deliver") == []

    def test_summary_identical_strict_vs_pipelined(self):
        strict = self.run_traced(shuffle="strict")
        pipelined = self.run_traced(shuffle="pipelined", chunk_gpsis=TINY_CHUNK)
        assert pipelined.worker_totals() == strict.worker_totals()
        assert pipelined.summary() == strict.summary()
