"""Columnar wire plane: store semantics and object-plane parity.

The columnar plane may change *how* bytes cross the BSP barrier — packed
struct-of-arrays buffers instead of per-message pickled objects — but
never *what* is delivered.  These tests pin the equivalence at both
levels: the store surface (destinations / take / len) message-for-message
against :class:`MessageStore`, and end-to-end listing runs
ledger-for-ledger against the object-plane serial reference on every
paper pattern and every backend.
"""

import numpy as np
import pytest

from repro.bsp import (
    BSPEngine,
    ColumnarMessageStore,
    GpsiBatch,
    Message,
    MessageStore,
    PackedWorkerBatch,
    VertexProgram,
)
from repro.core import Gpsi, PSgL, UNMAPPED
from repro.exceptions import EngineError
from repro.graph import Graph, hash_partition
from repro.graph.generators import chung_lu_power_law, erdos_renyi
from repro.pattern import paper_patterns
from repro.runtime import ProcessExecutor


def g(i, nxt=1):
    """A distinct 3-vertex Gpsi keyed by ``i``."""
    return Gpsi((i, UNMAPPED, i + 100), 0b001, nxt)


def outboxes():
    """Two workers' outboxes with interleaved destinations (as_batch form)."""
    w0, w1 = MessageStore(), MessageStore()
    w0.add(Message(5, g(0)))
    w0.add(Message(2, g(1)))
    w0.add(Message(5, g(2)))
    w1.add(Message(2, g(3)))
    w1.add(Message(9, g(4)))
    w1.add(Message(5, g(5)))
    return w0.as_batch(), w1.as_batch()


def both_stores():
    """The same two outboxes merged into each plane's store."""
    b0, b1 = outboxes()
    obj = MessageStore()
    obj.merge_batch(b0)
    obj.merge_batch(b1)
    col = ColumnarMessageStore()
    col.merge_batch(GpsiBatch.pack(b0))
    col.merge_batch(GpsiBatch.pack(b1))
    return obj, col


class TestStoreSemantics:
    def test_destinations_first_send_order(self):
        obj, col = both_stores()
        assert col.destinations() == obj.destinations() == [5, 2, 9]

    def test_take_matches_object_plane(self):
        obj, col = both_stores()
        for vertex in (5, 2, 9):
            assert col.take(vertex) == obj.take(vertex)
        assert col.take(777) == [] == obj.take(777)

    def test_len_matches_delivered_payloads(self):
        """Satellite regression: ``len(store)`` must equal the number of
        payloads ``take`` can still deliver, on both planes, through the
        whole merge/deliver cycle."""
        obj, col = both_stores()
        assert len(obj) == len(col) == 6
        for store in (obj, col):
            remaining = 6
            for vertex in (5, 2, 9):
                remaining -= len(store.take(vertex))
                assert len(store) == remaining
            assert len(store) == 0 and not store

    def test_merge_batch_ignores_empty_slots(self):
        """An empty payload list must not activate a vertex or skew the
        count — on either plane."""
        obj = MessageStore()
        obj.merge_batch([(5, [])])
        assert len(obj) == 0 and obj.destinations() == [] and not obj
        col = ColumnarMessageStore()
        col.merge_batch(GpsiBatch.pack([(5, [])]))
        assert len(col) == 0 and col.destinations() == [] and not col

    def test_combiner_fold_matches_live_adds(self):
        combine = lambda a, b: a + b  # noqa: E731
        merged = MessageStore(combine)
        merged.merge_batch([(3, [1, 2]), (4, [10])])
        merged.merge_batch([(3, [4])])
        assert len(merged) == 2  # one deliverable payload per destination
        assert merged.take(3) == [7]
        assert merged.take(4) == [10]
        assert len(merged) == 0

    def test_pack_rejects_non_gpsi_payloads(self):
        with pytest.raises(TypeError, match="wire='object'"):
            GpsiBatch.pack([(0, [42])])

    def test_pack_empty_outbox(self):
        batch = GpsiBatch.pack([])
        assert len(batch) == 0 and batch.nbytes == 0

    def test_build_worker_batches_matches_object_plane(self):
        obj, col = both_stores()
        owner_of = np.zeros(10, dtype=np.int64)
        owner_of[5] = 1  # v5 on worker 1; v2, v9 on worker 0
        batches = col.build_worker_batches(owner_of, 3)
        assert batches[2] == []  # no messages -> falsy batch
        assert isinstance(batches[0], PackedWorkerBatch)
        # The packed batches materialise to exactly the object plane's
        # per-worker (vertex, payloads) batches, activation order intact.
        expected = [[], [], []]
        for v in obj.destinations():
            expected[int(owner_of[v])].append((v, None))
        for w in (0, 1):
            materialized = batches[w].materialize()
            assert [v for v, _ in materialized] == [v for v, _ in expected[w]]
            for vertex, payloads in materialized:
                assert payloads == obj.take(vertex)

    def test_batch_nbytes_is_exact_buffer_size(self):
        b0, _ = outboxes()
        batch = GpsiBatch.pack(b0)
        assert batch.nbytes == (
            batch.dest.nbytes + batch.columns.nbytes
        )
        assert batch.nbytes == len(batch) * (8 + 8 * 3 + 4 + 1)


GRAPHS = {
    "er": erdos_renyi(28, 0.25, seed=13),
    "powerlaw": chung_lu_power_law(30, gamma=2.5, avg_degree=4, seed=5),
}


def run_listing(graph, pattern, backend, wire, procs=None):
    driver = PSgL(
        graph,
        num_workers=4,
        strategy="WA,0.5",
        seed=3,
        backend=backend,
        procs=procs,
        wire=wire,
    )
    return driver.run(pattern, collect_instances=True)


def assert_plane_parity(reference, other):
    """Byte-identical observable outputs: counts, instances, ledgers and
    supersteps (wire_bytes excepted — it is a plane-specific diagnostic)."""
    assert other.count == reference.count
    assert sorted(other.instances) == sorted(reference.instances)
    assert other.supersteps == reference.supersteps
    assert other.gpsi_by_vertex == reference.gpsi_by_vertex
    assert other.index_queries == reference.index_queries
    assert other.index_pruned == reference.index_pruned
    for step_ref, step_other in zip(reference.ledger.steps, other.ledger.steps):
        assert step_other.worker_compute_calls == step_ref.worker_compute_calls
        assert step_other.worker_messages == step_ref.worker_messages
        assert step_other.worker_cost == step_ref.worker_cost
    assert other.ledger.peak_live_messages == reference.ledger.peak_live_messages


class TestPlaneParity:
    @pytest.mark.parametrize("pattern_name", sorted(paper_patterns()))
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_columnar_matches_object_reference(self, backend, pattern_name):
        graph = GRAPHS["er"]
        pattern = paper_patterns()[pattern_name]
        reference = run_listing(graph, pattern, "serial", "object")
        columnar = run_listing(
            graph, pattern, backend, "columnar", procs=2 if backend != "serial" else None
        )
        assert_plane_parity(reference, columnar)

    @pytest.mark.parametrize("pattern_name", ["PG1", "PG3"])
    def test_thread_backend_columnar(self, pattern_name):
        graph = GRAPHS["powerlaw"]
        pattern = paper_patterns()[pattern_name]
        reference = run_listing(graph, pattern, "serial", "object")
        columnar = run_listing(graph, pattern, "thread", "columnar", procs=3)
        assert_plane_parity(reference, columnar)

    def test_trace_worker_totals_identical(self):
        """A traced columnar run records the same per-worker cost totals
        and summary as the traced object reference (the plane-specific
        barrier ``wire_bytes`` field rides alongside, changing nothing)."""
        from repro.obs import Tracer

        graph = GRAPHS["er"]
        pattern = paper_patterns()["PG2"]
        tracers = {}
        for wire in ("object", "columnar"):
            tracer = Tracer()
            PSgL(graph, num_workers=4, seed=3, wire=wire, trace=tracer).run(pattern)
            tracers[wire] = tracer
        assert (
            tracers["columnar"].worker_totals() == tracers["object"].worker_totals()
        )
        assert tracers["columnar"].summary() == tracers["object"].summary()

    def test_message_bytes_accounting_identical(self):
        """The canonical (scalar-codec) message-volume metric must not
        depend on the plane the bytes physically crossed on."""
        graph = GRAPHS["powerlaw"]
        pattern = paper_patterns()["PG2"]
        kwargs = dict(track_message_bytes=True, count_per_vertex=True)
        obj = PSgL(graph, num_workers=3, seed=1, wire="object").run(pattern, **kwargs)
        col = PSgL(graph, num_workers=3, seed=1, wire="columnar").run(pattern, **kwargs)
        assert col.message_bytes == obj.message_bytes
        assert col.per_vertex_counts == obj.per_vertex_counts


class TestWireBytesMetric:
    def test_columnar_ledger_reports_exact_bytes(self):
        graph = GRAPHS["er"]
        pattern = paper_patterns()["PG2"]
        col = run_listing(graph, pattern, "serial", "columnar")
        total = col.ledger.total_wire_bytes()
        assert total > 0
        per_step = [
            sum(step.worker_wire_bytes)
            for step in col.ledger.steps
            if step.worker_wire_bytes is not None
        ]
        assert sum(per_step) == total

    def test_object_plane_reports_none(self):
        graph = GRAPHS["er"]
        obj = run_listing(graph, paper_patterns()["PG1"], "serial", "object")
        assert obj.ledger.total_wire_bytes() == 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_wire_bytes_identical_across_backends(self, backend):
        """Logical workers pack the same outboxes wherever they run, so
        the exact wire-byte ledger is backend-invariant."""
        graph = GRAPHS["er"]
        pattern = paper_patterns()["PG2"]
        serial = run_listing(graph, pattern, "serial", "columnar")
        parallel = run_listing(graph, pattern, backend, "columnar", procs=2)
        for step_ref, step_other in zip(serial.ledger.steps, parallel.ledger.steps):
            assert step_other.worker_wire_bytes == step_ref.worker_wire_bytes
        assert parallel.ledger.total_wire_bytes() == serial.ledger.total_wire_bytes()


class TestEngineGuards:
    def test_unknown_wire_plane_rejected(self):
        graph = Graph(4, [(0, 1), (1, 2)])
        with pytest.raises(EngineError, match="wire plane"):
            BSPEngine(graph, hash_partition(4, 2), wire="quantum")

    def test_columnar_refuses_combiner_programs(self):
        class Summing(VertexProgram):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.send(ctx.vertex, 1)

            def message_combiner(self):
                return lambda a, b: a + b

        graph = Graph(4, [(0, 1), (1, 2)])
        engine = BSPEngine(graph, hash_partition(4, 2), wire="columnar")
        with pytest.raises(EngineError, match="combiner"):
            engine.run(Summing())


class TestSpawnStartMethod:
    def test_process_parity_under_spawn(self):
        """The packed buffers must survive a spawn-fresh interpreter (no
        inherited module state, everything crossing by pickle)."""
        graph = GRAPHS["er"]
        pattern = paper_patterns()["PG1"]
        reference = run_listing(graph, pattern, "serial", "object")
        executor = ProcessExecutor(procs=2, start_method="spawn")
        columnar = PSgL(
            graph,
            num_workers=4,
            strategy="WA,0.5",
            seed=3,
            backend=executor,
            wire="columnar",
        ).run(pattern, collect_instances=True)
        assert_plane_parity(reference, columnar)
