"""Tests for exhaustive motif enumeration and canonical forms."""

import pytest

from repro.baselines import count_instances
from repro.exceptions import PatternError
from repro.graph import complete_graph, erdos_renyi
from repro.pattern import (
    PatternGraph,
    all_connected_patterns,
    are_isomorphic,
    canonical_form,
    count_order_preserving_automorphisms,
    diamond,
    motif_census,
    square,
    triangle,
)


class TestCanonicalForm:
    def test_relabeling_invariant(self):
        p = diamond()
        q = p.with_partial_order(()).relabeled([2, 0, 3, 1])
        assert canonical_form(p) == canonical_form(q)

    def test_distinguishes_square_from_diamond(self):
        assert canonical_form(square()) != canonical_form(diamond())

    def test_are_isomorphic(self):
        c4a = PatternGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        c4b = PatternGraph(4, [(0, 2), (2, 1), (1, 3), (3, 0)])
        assert are_isomorphic(c4a, c4b)
        assert not are_isomorphic(c4a, diamond())

    def test_size_mismatch_fast_path(self):
        assert not are_isomorphic(triangle(), square())


class TestAllConnectedPatterns:
    @pytest.mark.parametrize("k,expected", [(1, 1), (2, 1), (3, 2), (4, 6), (5, 21)])
    def test_classical_counts(self, k, expected):
        assert len(all_connected_patterns(k)) == expected

    def test_pairwise_non_isomorphic(self):
        patterns = all_connected_patterns(4)
        for i, a in enumerate(patterns):
            for b in patterns[i + 1:]:
                assert not are_isomorphic(a, b)

    def test_all_connected(self):
        # construction guarantees it, but verify through PatternGraph's
        # own connectivity validation (it raises on disconnected input)
        for p in all_connected_patterns(5):
            assert p.num_edges >= 4

    def test_symmetry_broken_by_default(self):
        for p in all_connected_patterns(4):
            assert count_order_preserving_automorphisms(p) == 1

    def test_auto_break_off(self):
        patterns = all_connected_patterns(3, auto_break=False)
        assert all(p.partial_order == frozenset() for p in patterns)

    def test_edge_counts_ascending(self):
        patterns = all_connected_patterns(4)
        sizes = [p.num_edges for p in patterns]
        assert sizes == sorted(sizes)
        assert sizes[0] == 3 and sizes[-1] == 6  # tree first, K4 last

    def test_k_bounds(self):
        with pytest.raises(PatternError):
            all_connected_patterns(0)
        with pytest.raises(PatternError):
            all_connected_patterns(6)


class TestMotifCensus:
    def test_counts_match_oracle(self):
        g = erdos_renyi(40, 0.15, seed=9)
        census = motif_census(g, 3, num_workers=3)
        expected = {
            p.name: count_instances(g, p) for p in all_connected_patterns(3)
        }
        assert census == expected

    def test_k4_census_on_complete_graph(self):
        census = motif_census(complete_graph(5), 4, num_workers=2)
        # every 4-motif occurs in K5 (non-induced semantics)
        assert all(count > 0 for count in census.values())
        # the clique count has a closed form: C(5,4)
        clique_name = all_connected_patterns(4)[-1].name
        assert census[clique_name] == 5
