"""Smoke tests: every example script must run end-to-end.

The examples double as executable documentation; each is executed in a
subprocess exactly as a user would run it, with assertions on the key
lines of output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, timeout=600):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.example
def test_quickstart():
    out = run_example("quickstart.py")
    assert "squares found: 3" in out
    # the three squares of Figure 1
    assert "{1, 2, 3, 5}" in out
    assert "{1, 2, 5, 6}" in out
    assert "{2, 3, 4, 5}" in out
    for name in ["PG1", "PG2", "PG3", "PG4", "PG5"]:
        assert name in out


@pytest.mark.example
def test_clustering_coefficient():
    out = run_example("clustering_coefficient.py")
    assert "triangles (PSgL" in out
    assert "global clustering coefficient" in out
    assert "worker balance" in out


@pytest.mark.example
def test_motif_census():
    out = run_example("motif_census.py")
    assert "triangle" in out
    assert "clique-4 (K4)" in out
    assert "over-represented" in out


@pytest.mark.example
def test_strategy_tuning():
    out = run_example("strategy_tuning.py")
    assert "WA,0.5" in out
    assert "worker-count sweep" in out


@pytest.mark.example
def test_engine_shootout():
    out = run_example("engine_shootout.py")
    assert "PSgL (WA,0.5)" in out
    assert "Afrati multiway join" in out
    assert "SGIA-MR edge join" in out
    assert "PowerGraph traversal" in out
    assert "bowtie" in out
    assert "wedge sampling" in out
