"""Unit tests for the parallel runtime: CSR export, shared-memory graph,
backend registry, executor semantics, and engine regressions."""

import numpy as np
import pytest

from repro.bsp import BSPEngine, MessageStore, VertexProgram, sum_aggregator
from repro.bsp.message import Message
from repro.exceptions import EngineError
from repro.graph import Graph, hash_partition
from repro.graph.generators import erdos_renyi
from repro.runtime import (
    ProcessExecutor,
    SerialExecutor,
    SharedGraphExport,
    ThreadExecutor,
    attach_shared_graph,
    available_backends,
    make_executor,
    register_backend,
)


def path_graph(n):
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


class TestCSR:
    def test_roundtrip(self):
        g = erdos_renyi(40, 0.2, seed=7)
        indptr, indices = g.to_csr()
        assert indptr[0] == 0 and indptr[-1] == len(indices) == 2 * g.num_edges
        rebuilt = Graph.from_csr(indptr, indices)
        assert rebuilt == g
        assert rebuilt.num_edges == g.num_edges

    def test_views_not_copies(self):
        g = path_graph(5)
        indptr, indices = g.to_csr()
        rebuilt = Graph.from_csr(indptr, indices)
        assert rebuilt.neighbors(1).base is indices

    def test_empty_graph(self):
        g = Graph(0, [])
        indptr, indices = g.to_csr()
        rebuilt = Graph.from_csr(indptr, indices)
        assert rebuilt.num_vertices == 0 and rebuilt.num_edges == 0

    def test_isolated_vertices(self):
        g = Graph(4, [(0, 1)])
        rebuilt = Graph.from_csr(*g.to_csr())
        assert rebuilt == g
        assert rebuilt.degree(3) == 0


class TestSharedGraph:
    def test_export_attach_roundtrip(self):
        g = erdos_renyi(30, 0.3, seed=1)
        with SharedGraphExport(g) as export:
            attached = attach_shared_graph(export.handle)
            try:
                assert attached.graph == g
                assert attached.graph.has_edge(*next(iter(g.edges())))
            finally:
                attached.close()

    def test_handle_is_small_and_picklable(self):
        import pickle

        g = erdos_renyi(50, 0.2, seed=2)
        with SharedGraphExport(g) as export:
            blob = pickle.dumps(export.handle)
            # The point of shared memory: the handle, not the graph,
            # crosses the process boundary.
            assert len(blob) < 500
            assert export.nbytes() >= 8 * (g.num_vertices + 1)

    def test_close_is_idempotent(self):
        export = SharedGraphExport(path_graph(3))
        export.close()
        export.close()


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"serial", "thread", "process"} <= set(available_backends())
        assert available_backends()[0] == "serial"

    def test_make_by_name(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("thread"), ThreadExecutor)
        assert isinstance(make_executor("process"), ProcessExecutor)
        assert isinstance(make_executor(None), SerialExecutor)

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert make_executor(executor) is executor

    def test_unknown_backend_rejected(self):
        with pytest.raises(EngineError):
            make_executor("gpu-cluster")

    def test_custom_backend_registration(self):
        register_backend("custom-serial", SerialExecutor)
        try:
            assert isinstance(make_executor("custom-serial"), SerialExecutor)
        finally:
            import repro.runtime.registry as reg

            del reg._BACKENDS["custom-serial"]


class TestMessageStoreBatches:
    def test_as_batch_merge_batch_roundtrip(self):
        a = MessageStore()
        a.add(Message(2, "x"))
        a.add(Message(1, "y"))
        a.add(Message(2, "z"))
        merged = MessageStore()
        merged.merge_batch(a.as_batch())
        assert len(merged) == 3
        assert merged.destinations() == [2, 1]
        assert merged.take(2) == ["x", "z"]

    def test_merge_preserves_worker_order(self):
        w0, w1 = MessageStore(), MessageStore()
        w0.add(Message(5, "a0"))
        w1.add(Message(5, "b0"))
        w1.add(Message(6, "b1"))
        merged = MessageStore()
        merged.merge_batch(w0.as_batch())
        merged.merge_batch(w1.as_batch())
        assert merged.destinations() == [5, 6]
        assert merged.take(5) == ["a0", "b0"]

    def test_merge_applies_combiner_across_workers(self):
        combine = lambda a, b: a + b  # noqa: E731
        w0, w1 = MessageStore(combine), MessageStore(combine)
        w0.add(Message(3, 1))
        w0.add(Message(3, 2))
        w1.add(Message(3, 4))
        merged = MessageStore(combine)
        merged.merge_batch(w0.as_batch())
        merged.merge_batch(w1.as_batch())
        # combined payload, counted once per destination like live adds
        assert len(merged) == 1
        assert merged.take(3) == [7]


class Ripple(VertexProgram):
    """Sends its vertex id along the path for ``rounds`` supersteps and
    tallies everything through the parallel-safe delta hooks."""

    def __init__(self, rounds=3):
        self.rounds = rounds
        self.seen = {}

    def compute(self, ctx, messages):
        for payload in messages:
            self.seen[payload] = self.seen.get(payload, 0) + 1
            ctx.emit((ctx.superstep, ctx.vertex, payload))
        ctx.aggregate("hops", len(messages))
        ctx.add_cost(1.0 + len(messages))
        if ctx.superstep < self.rounds:
            for u in ctx.graph.neighbors(ctx.vertex):
                ctx.send(int(u), ctx.vertex)

    def persistent_aggregators(self):
        return {"hops": sum_aggregator(0)}

    def collect_state_delta(self):
        delta = self.seen
        self.seen = {}
        return delta

    def merge_state_delta(self, delta):
        for key, n in delta.items():
            self.seen[key] = self.seen.get(key, 0) + n


class TestBackendEquivalence:
    """Engine-level parity: every backend must reproduce the serial run."""

    def _run(self, backend, procs=2):
        g = erdos_renyi(24, 0.25, seed=9)
        program = Ripple(rounds=3)
        engine = BSPEngine(
            g, hash_partition(24, 3), backend=backend, procs=procs
        )
        result = engine.run(program)
        return program, result

    def test_thread_matches_serial(self):
        p_serial, r_serial = self._run("serial")
        p_thread, r_thread = self._run("thread")
        assert p_thread.seen == p_serial.seen
        assert r_thread.outputs == r_serial.outputs
        assert r_thread.aggregated == r_serial.aggregated
        assert r_thread.ledger.summary() == r_serial.ledger.summary()

    def test_process_matches_serial(self):
        p_serial, r_serial = self._run("serial")
        p_proc, r_proc = self._run("process")
        assert p_proc.seen == p_serial.seen
        assert r_proc.outputs == r_serial.outputs
        assert r_proc.aggregated == r_serial.aggregated
        for s_serial, s_proc in zip(r_serial.ledger.steps, r_proc.ledger.steps):
            assert s_proc.worker_cost == s_serial.worker_cost
            assert s_proc.worker_messages == s_serial.worker_messages
            assert s_proc.worker_compute_calls == s_serial.worker_compute_calls

    def test_process_oom_budget_still_enforced(self):
        from repro.exceptions import SimulatedOOMError

        g = erdos_renyi(24, 0.25, seed=9)
        engine = BSPEngine(
            g,
            hash_partition(24, 3),
            memory_budget=3,
            backend="process",
            procs=2,
        )
        with pytest.raises(SimulatedOOMError):
            engine.run(Ripple(rounds=2))


class FaultyCompute(VertexProgram):
    """Raises inside ``compute`` on one worker in superstep 1 — the
    child-failure path of the parallel backends."""

    def compute(self, ctx, messages):
        if ctx.superstep == 1 and ctx.worker_id == 1:
            raise ValueError("injected child failure")
        ctx.add_cost(1.0)
        if ctx.superstep < 2:
            for u in ctx.graph.neighbors(ctx.vertex):
                ctx.send(int(u), ctx.vertex)


class FaultyWithTeardown(FaultyCompute):
    """Module-level (picklable) variant that records post_application."""

    torn_down = False

    def post_application(self):
        FaultyWithTeardown.torn_down = True


class TestProcessChildFailure:
    """Regression: ``ProcessExecutor.run_superstep`` gathered futures in
    order, so the first child exception propagated while later futures
    kept running uncancelled — racing teardown's shared-memory unlink
    against children still scanning the CSR blocks."""

    def _engine(self, **kwargs):
        g = erdos_renyi(24, 0.3, seed=5)
        return BSPEngine(g, hash_partition(24, 3), **kwargs)

    def test_child_exception_propagates(self):
        engine = self._engine(backend="process", procs=2)
        with pytest.raises(ValueError, match="injected child failure"):
            engine.run(FaultyCompute())

    def test_outstanding_futures_drained_before_teardown(self):
        """After the failure the driver must be able to re-export and run
        again immediately: if close() had unlinked blocks under live
        children, the kernel names could linger or the pool would be
        wedged."""
        for _ in range(2):
            engine = self._engine(backend="process", procs=2)
            with pytest.raises(ValueError):
                engine.run(FaultyCompute())
        # And a healthy run on a fresh engine still succeeds.
        engine = self._engine(backend="process", procs=2)
        program = Ripple(rounds=1)
        engine.run(program)

    def test_program_torn_down_on_child_failure(self):
        FaultyWithTeardown.torn_down = False
        engine = self._engine(backend="process", procs=2)
        with pytest.raises(ValueError):
            engine.run(FaultyWithTeardown())
        assert FaultyWithTeardown.torn_down


class TestEngineTeardown:
    def test_post_application_called_on_max_supersteps(self):
        """Regression: the max_supersteps overflow path must tear the
        program down exactly like the OOM path does."""

        class PingPong(VertexProgram):
            def __init__(self):
                self.torn_down = False

            def compute(self, ctx, messages):
                ctx.send(ctx.vertex, "again")

            def post_application(self):
                self.torn_down = True

        program = PingPong()
        engine = BSPEngine(
            path_graph(2), hash_partition(2, 1), max_supersteps=4
        )
        with pytest.raises(EngineError):
            engine.run(program)
        assert program.torn_down

    def test_post_application_called_once_on_success(self):
        class Silent(VertexProgram):
            calls = 0

            def compute(self, ctx, messages):
                pass

            def post_application(self):
                Silent.calls += 1

        Silent.calls = 0
        BSPEngine(path_graph(3), hash_partition(3, 1)).run(Silent())
        assert Silent.calls == 1

    def test_shared_memory_released_after_process_run(self):
        g = erdos_renyi(20, 0.2, seed=4)
        engine = BSPEngine(
            g, hash_partition(20, 2), backend="process", procs=2
        )
        engine.run(Ripple(rounds=1))
        # A second run must re-export cleanly (fails if blocks leak/clash).
        engine.run(Ripple(rounds=1))


class TestOrderedPrecomputed:
    def test_from_precomputed_matches_fresh(self):
        from repro.graph import OrderedGraph

        g = erdos_renyi(25, 0.3, seed=11)
        fresh = OrderedGraph(g)
        rebuilt = OrderedGraph.from_precomputed(
            g, fresh.ranks, fresh.nb_values, fresh.ns_values
        )
        assert np.array_equal(rebuilt.ranks, fresh.ranks)
        assert rebuilt.check_property1() == fresh.check_property1()
