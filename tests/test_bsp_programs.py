"""Classic Pregel programs on the BSP substrate.

PageRank, connected components and single-source shortest paths prove the
engine implements the full vertex-centric contract (message combiners,
aggregators, data-dependent halting) and is not a PSgL-only scaffold.
"""

import pytest

from repro.bsp import (
    BSPEngine,
    VertexProgram,
    max_aggregator,
    min_aggregator,
    sum_aggregator,
)
from repro.graph import Graph, complete_graph, hash_partition


class PageRank(VertexProgram):
    """Fixed-iteration PageRank with a sum combiner and a mass aggregator."""

    def __init__(self, iterations=10, damping=0.85):
        self.iterations = iterations
        self.damping = damping
        self.ranks = {}

    def message_combiner(self):
        return lambda a, b: a + b

    def aggregators(self):
        return {"mass": sum_aggregator(0.0)}

    def compute(self, ctx, messages):
        n = ctx.graph.num_vertices
        if ctx.superstep == 0:
            rank = 1.0 / n
        else:
            rank = (1 - self.damping) / n + self.damping * sum(messages)
        self.ranks[ctx.vertex] = rank
        ctx.aggregate("mass", rank)
        if ctx.superstep < self.iterations:
            degree = ctx.graph.degree(ctx.vertex)
            if degree:
                share = rank / degree
                for u in ctx.graph.neighbors(ctx.vertex):
                    ctx.send(int(u), share)


class ConnectedComponents(VertexProgram):
    """Label propagation: every vertex converges to its component's
    minimum id; halts when no label changes (no messages sent)."""

    def __init__(self):
        self.labels = {}

    def message_combiner(self):
        return min

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            label = ctx.vertex
        else:
            best = min(messages)
            if best >= self.labels[ctx.vertex]:
                return  # no improvement: stay silent (vote to halt)
            label = best
        self.labels[ctx.vertex] = label
        for u in ctx.graph.neighbors(ctx.vertex):
            ctx.send(int(u), label)


class SSSP(VertexProgram):
    """Single-source shortest paths (unit weights)."""

    def __init__(self, source):
        self.source = source
        self.dist = {}

    def message_combiner(self):
        return min

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            if ctx.vertex != self.source:
                return
            candidate = 0
        else:
            candidate = min(messages)
        if candidate < self.dist.get(ctx.vertex, float("inf")):
            self.dist[ctx.vertex] = candidate
            for u in ctx.graph.neighbors(ctx.vertex):
                ctx.send(int(u), candidate + 1)


def two_triangles_and_isolate():
    # components {0,1,2}, {3,4,5}, {6}
    return Graph(7, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])


class TestPageRank:
    def test_mass_conserved(self):
        g = complete_graph(6)
        program = PageRank(iterations=8)
        result = BSPEngine(g, hash_partition(6, 2)).run(program)
        assert result.aggregated["mass"] == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_graph_uniform_ranks(self):
        g = complete_graph(5)
        program = PageRank(iterations=6)
        BSPEngine(g, hash_partition(5, 2)).run(program)
        values = list(program.ranks.values())
        assert max(values) - min(values) < 1e-9

    def test_hub_outranks_leaves(self):
        g = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        program = PageRank(iterations=20)
        BSPEngine(g, hash_partition(5, 2)).run(program)
        assert program.ranks[0] > 2 * program.ranks[1]

    def test_combiner_reduces_messages(self):
        g = complete_graph(8)
        with_comb = BSPEngine(g, hash_partition(8, 2)).run(PageRank(iterations=3))

        class NoCombiner(PageRank):
            def message_combiner(self):
                return None

        without = BSPEngine(g, hash_partition(8, 2)).run(NoCombiner(iterations=3))
        assert with_comb.ledger.peak_live_messages < without.ledger.peak_live_messages


class TestConnectedComponents:
    def test_labels(self):
        g = two_triangles_and_isolate()
        program = ConnectedComponents()
        BSPEngine(g, hash_partition(7, 3)).run(program)
        assert program.labels[0] == program.labels[1] == program.labels[2] == 0
        assert program.labels[3] == program.labels[4] == program.labels[5] == 3
        assert program.labels[6] == 6

    def test_halts_without_iteration_cap(self):
        g = two_triangles_and_isolate()
        result = BSPEngine(g, hash_partition(7, 2)).run(ConnectedComponents())
        assert result.supersteps <= 5

    def test_path_graph_propagates(self):
        n = 20
        g = Graph(n, [(i, i + 1) for i in range(n - 1)])
        program = ConnectedComponents()
        BSPEngine(g, hash_partition(n, 4)).run(program)
        assert all(label == 0 for label in program.labels.values())


class TestSSSP:
    def test_distances_on_path(self):
        n = 10
        g = Graph(n, [(i, i + 1) for i in range(n - 1)])
        program = SSSP(source=0)
        BSPEngine(g, hash_partition(n, 3)).run(program)
        assert program.dist == {v: v for v in range(n)}

    def test_unreachable_vertices_absent(self):
        g = Graph(4, [(0, 1)])
        program = SSSP(source=0)
        BSPEngine(g, hash_partition(4, 2)).run(program)
        assert 2 not in program.dist and 3 not in program.dist


class TestAggregatorSemantics:
    def test_per_step_visible_next_superstep(self):
        observed = []

        class Observer(VertexProgram):
            def aggregators(self):
                return {"tick": sum_aggregator(0)}

            def compute(self, ctx, messages):
                observed.append((ctx.superstep, ctx.aggregated("tick")))
                ctx.aggregate("tick", 1)
                if ctx.superstep == 0:
                    ctx.send(ctx.vertex, "again")

        g = Graph(3, [(0, 1), (1, 2)])
        BSPEngine(g, hash_partition(3, 1)).run(Observer())
        step0 = [v for s, v in observed if s == 0]
        step1 = [v for s, v in observed if s == 1]
        assert all(v == 0 for v in step0)  # nothing visible yet
        assert all(v == 3 for v in step1)  # superstep 0's total

    def test_persistent_accumulates(self):
        class Accumulator(VertexProgram):
            def persistent_aggregators(self):
                return {"total": sum_aggregator(0)}

            def compute(self, ctx, messages):
                ctx.aggregate("total", 1)
                if ctx.superstep == 0:
                    ctx.send(ctx.vertex, "again")

        g = Graph(4, [(0, 1), (2, 3)])
        result = BSPEngine(g, hash_partition(4, 2)).run(Accumulator())
        assert result.aggregated["total"] == 8  # 4 vertices x 2 supersteps

    def test_min_max_aggregators(self):
        class Extremes(VertexProgram):
            def aggregators(self):
                return {"lo": min_aggregator(), "hi": max_aggregator()}

            def compute(self, ctx, messages):
                ctx.aggregate("lo", ctx.vertex)
                ctx.aggregate("hi", ctx.vertex)

        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        result = BSPEngine(g, hash_partition(5, 2)).run(Extremes())
        assert result.aggregated["lo"] == 0
        assert result.aggregated["hi"] == 4

    def test_unknown_aggregator_raises(self):
        class Bad(VertexProgram):
            def compute(self, ctx, messages):
                ctx.aggregate("nope", 1)

        g = Graph(2, [(0, 1)])
        with pytest.raises(KeyError):
            BSPEngine(g, hash_partition(2, 1)).run(Bad())
