"""Unit tests for the cost model and the bloom filter."""

import math

import pytest

from repro.core import (
    BloomFilter,
    CostParameters,
    binomial,
    estimate_f,
    estimate_load,
    expected_f_from_distribution,
    optimal_parameters,
)
from repro.exceptions import ReproError


class TestBinomial:
    def test_small_values_exact(self):
        assert binomial(5, 2) == pytest.approx(10.0)
        assert binomial(10, 0) == 1.0
        assert binomial(7, 7) == pytest.approx(1.0)

    def test_out_of_range_zero(self):
        assert binomial(3, 5) == 0.0
        assert binomial(-1, 0) == 0.0
        assert binomial(3, -1) == 0.0

    def test_large_values_capped(self):
        assert binomial(10_000, 5_000) == 1e18

    def test_matches_math_comb(self):
        for n in range(0, 30):
            for k in range(0, n + 1):
                assert binomial(n, k) == pytest.approx(math.comb(n, k), rel=1e-9)


class TestEstimates:
    def test_estimate_f_verification_is_one(self):
        assert estimate_f(100, 0) == 1.0

    def test_estimate_f_upper_bound(self):
        assert estimate_f(10, 2) == pytest.approx(45.0)

    def test_estimate_load_equation2(self):
        costs = CostParameters(gray_check=2.0, scan=1.0, ce=3.0)
        assert estimate_load(4, 1, costs) == pytest.approx(2.0 + 3.0 * 4.0)

    def test_expected_f_from_distribution(self):
        dist = {2: 0.5, 4: 0.5}
        # min degree 3 keeps only d=4: 0.5 * C(4,2) = 3
        assert expected_f_from_distribution(dist, 3, 2) == pytest.approx(3.0)

    def test_expected_f_empty(self):
        assert expected_f_from_distribution({}, 0, 1) == 0.0

    def test_expected_f_capped(self):
        dist = {100000: 1.0}
        assert expected_f_from_distribution(dist, 0, 4) == 1e18


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(1000, 0.01, seed=1)
        keys = list(range(0, 5000, 5))
        for k in keys:
            bloom.add(k)
        assert all(k in bloom for k in keys)

    def test_fp_rate_near_target(self):
        bloom = BloomFilter(2000, 0.02, seed=2)
        for k in range(2000):
            bloom.add(k)
        false_positives = sum(1 for k in range(10_000, 40_000) if k in bloom)
        assert false_positives / 30_000 < 0.06  # 3x slack on the 2% target

    def test_estimated_fp_rate_reasonable(self):
        bloom = BloomFilter(500, 0.01, seed=3)
        for k in range(500):
            bloom.add(k)
        assert 0.0 < bloom.estimated_fp_rate() < 0.05

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(100, 0.01)
        assert 42 not in bloom

    def test_determinism_across_instances(self):
        a = BloomFilter(100, 0.01, seed=9)
        b = BloomFilter(100, 0.01, seed=9)
        for k in [3, 1000, 77777]:
            a.add(k)
            b.add(k)
        probe = [k in a for k in range(200)]
        assert probe == [k in b for k in range(200)]

    def test_memory_bytes_positive(self):
        assert BloomFilter(100, 0.01).memory_bytes() > 0

    def test_optimal_parameters_monotone(self):
        m_small, _ = optimal_parameters(100, 0.01)
        m_big, _ = optimal_parameters(1000, 0.01)
        assert m_big > m_small
        m_loose, _ = optimal_parameters(100, 0.1)
        assert m_loose < m_small

    def test_invalid_fp_rate(self):
        with pytest.raises(ReproError):
            optimal_parameters(100, 0.0)
        with pytest.raises(ReproError):
            optimal_parameters(100, 1.5)

    def test_zero_items_clamped(self):
        m, k = optimal_parameters(0, 0.5)
        assert m >= 8 and k >= 1

    def test_repr(self):
        assert "BloomFilter" in repr(BloomFilter(10, 0.1))
