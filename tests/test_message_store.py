"""Store-level invariants the barrier accounting relies on.

The engine's memory valve and the ledgers both trust ``len(store)`` to
be the number of deliverable payloads; the trace and wire ledgers trust
``wire_bytes`` to be exact.  These tests hammer the merge surfaces those
figures are maintained through — combiner folds across worker batches,
empty slots, duplicate destinations — plus the :class:`ColumnarOutbox`
watermark machinery the pipelined shuffle is built on.
"""

import numpy as np
import pytest

from repro.bsp import GpsiBatch, Message, MessageStore
from repro.bsp.message import ColumnarOutbox
from repro.core import Gpsi, UNMAPPED


def g(i, nxt=1):
    return Gpsi((i, UNMAPPED, i + 100), 0b001, nxt)


class TestMergeBatchCombinerFold:
    def test_fold_across_batches_matches_live_adds(self):
        """merge_batch folding worker outboxes in worker-id order must
        equal a serial store fed the same messages through ``add``."""
        combine = lambda a, b: a + b  # noqa: E731
        messages = [(3, 1), (4, 10), (3, 2), (4, 30), (3, 4)]
        live = MessageStore(combine)
        for dest, payload in messages:
            live.add(Message(dest, payload))
        merged = MessageStore(combine)
        merged.merge_batch([(3, [1]), (4, [10])])  # worker 0's outbox
        merged.merge_batch([(3, [2]), (4, [30])])  # worker 1's outbox
        merged.merge_batch([(3, [4])])  # worker 2's outbox
        assert len(merged) == len(live) == 2
        assert merged.take(3) == live.take(3) == [7]
        assert merged.take(4) == live.take(4) == [40]
        assert len(merged) == 0 and not merged

    def test_fold_is_order_sensitive_like_serial(self):
        """A non-commutative combiner pins the fold order: payloads fold
        left-to-right within a batch, batches in merge order — the same
        order a serial superstep would apply ``add``."""
        combine = lambda a, b: f"({a}+{b})"  # noqa: E731
        merged = MessageStore(combine)
        merged.merge_batch([(0, ["a", "b"])])
        merged.merge_batch([(0, ["c"])])
        assert merged.take(0) == ["((a+b)+c)"]

    def test_count_stable_under_duplicate_destination_folds(self):
        """Folding into an existing slot must not move ``_count``: one
        deliverable payload per destination, however many batches fed it."""
        combine = lambda a, b: a + b  # noqa: E731
        merged = MessageStore(combine)
        for k in range(5):
            merged.merge_batch([(7, [k]), (8, [k])])
            assert len(merged) == 2
        assert merged.take(7) == [sum(range(5))]
        assert len(merged) == 1

    def test_empty_slot_never_activates_or_counts(self):
        combine = lambda a, b: a + b  # noqa: E731
        for store in (MessageStore(), MessageStore(combine)):
            store.merge_batch([(5, []), (6, [1])])
            assert len(store) == 1
            assert store.destinations() == [6]
            assert store.take(5) == []
            assert len(store) == 1  # taking a never-activated vertex is free


class TestMessageStoreCountInvariant:
    def test_count_tracks_takes_through_merge_cycle(self):
        store = MessageStore()
        store.merge_batch([(1, [10, 11]), (2, [20])])
        store.merge_batch([(1, [12]), (3, [30])])
        assert len(store) == 5
        assert store.take(1) == [10, 11, 12]
        assert len(store) == 2  # 5 - 3: duplicate-destination lists concatenated
        assert store.take(2) == [20]
        assert store.take(3) == [30]
        assert len(store) == 0 and not store

    def test_extend_fast_path_matches_add(self):
        fast, slow = MessageStore(), MessageStore()
        msgs = [Message(1, "a"), Message(2, "b"), Message(1, "c")]
        fast.extend(msgs)
        for msg in msgs:
            slow.add(msg)
        assert len(fast) == len(slow) == 3
        assert fast.as_batch() == slow.as_batch()


class TestColumnarOutboxWatermarks:
    def pack(self, n, base=0):
        return np.arange(base, base + n, dtype=np.int64), _cols(n, base)

    def test_row_watermark_flushes_bounded_chunks(self):
        flushed = []
        outbox = ColumnarOutbox(flush=flushed.append, chunk_gpsis=4)
        for i in range(5):
            dest, cols = self.pack(2, base=10 * i)
            outbox.append(dest, cols)
        # 10 rows at watermark 4 → two 4-row chunks out, 2-row residual.
        assert [len(b) for b in flushed] == [4, 4]
        assert outbox.chunks_flushed == 2
        assert len(outbox) == 2
        residual = outbox.to_batch()
        assert len(residual) == 2
        assert outbox.flushed_bytes == sum(b.nbytes for b in flushed)

    def test_oversized_send_flushes_alone(self):
        """A single send larger than the watermark must not be split; it
        flushes alone and the pending rows before it flush first — so
        every chunk is ≤ max(watermark, one send)."""
        flushed = []
        outbox = ColumnarOutbox(flush=flushed.append, chunk_gpsis=4)
        outbox.append(*self.pack(2))
        outbox.append(*self.pack(7, base=100))  # overflows: 2 flush, then 7
        assert [len(b) for b in flushed] == [2, 7]
        assert len(outbox) == 0
        assert outbox.max_append_bytes == flushed[1].nbytes

    def test_byte_watermark(self):
        flushed = []
        dest, cols = self.pack(1)
        row_bytes = dest.nbytes + cols.nbytes
        outbox = ColumnarOutbox(flush=flushed.append, chunk_bytes=3 * row_bytes)
        for i in range(7):
            outbox.append(*self.pack(1, base=i))
        assert [len(b) for b in flushed] == [3, 3]
        assert len(outbox) == 1

    def test_streamed_plus_residual_equals_unwatermarked(self):
        """Chunks + residual concatenate to exactly the batch a plain
        outbox would ship — the identity pipelined parity rests on."""
        plain = ColumnarOutbox()
        streaming = []
        chunked = ColumnarOutbox(flush=streaming.append, chunk_gpsis=3)
        for i in range(4):
            dest, cols = self.pack(2, base=10 * i)
            plain.append(dest.copy(), cols)
            chunked.append(dest, cols)
        reference = plain.to_batch()
        parts = streaming + [chunked.to_batch()]
        rebuilt_dest = np.concatenate([p.dest for p in parts])
        assert rebuilt_dest.tolist() == reference.dest.tolist()
        assert sum(p.nbytes for p in parts) == reference.nbytes
        assert (
            chunked.flushed_bytes + chunked.to_batch().nbytes == reference.nbytes
        )

    def test_no_flush_callback_never_chunks(self):
        outbox = ColumnarOutbox()
        for i in range(100):
            outbox.append(*self.pack(3, base=i))
        assert outbox.chunks_flushed == 0
        assert len(outbox) == 300

    def test_empty_append_is_free(self):
        flushed = []
        outbox = ColumnarOutbox(flush=flushed.append, chunk_gpsis=1)
        dest, cols = self.pack(0)
        outbox.append(dest, cols)
        assert len(outbox) == 0 and flushed == []


def _cols(n, base=0):
    from repro.core import pack_gpsis

    return pack_gpsis([g(base + i) for i in range(n)], k=3)
