"""Tests for induced motif counting via Möbius inversion."""

from itertools import combinations

import pytest

from repro.exceptions import PatternError
from repro.graph import complete_graph, cycle_graph, erdos_renyi, grid_graph
from repro.pattern import (
    PatternGraph,
    all_connected_patterns,
    canonical_form,
    conversion_matrix,
    count_monomorphisms,
    induced_census,
    induced_from_noninduced,
    instances_within,
    square,
    triangle,
)


def brute_induced(graph, k):
    """Independent oracle: classify every connected k-subset."""
    motifs = all_connected_patterns(k, auto_break=False)
    forms = {canonical_form(p): p.name for p in motifs}
    counts = {p.name: 0 for p in motifs}
    for subset in combinations(range(graph.num_vertices), k):
        idx = {v: i for i, v in enumerate(subset)}
        edges = [
            (idx[u], idx[v])
            for u in subset
            for v in subset
            if u < v and graph.has_edge(u, v)
        ]
        try:
            induced_graph = PatternGraph(k, edges)
        except PatternError:
            continue  # disconnected subset
        counts[forms[canonical_form(induced_graph)]] += 1
    return counts


class TestMonomorphisms:
    def test_triangle_into_itself(self):
        t = triangle().with_partial_order(())
        assert count_monomorphisms(t, t) == 6  # |Aut| for equal graphs

    def test_square_into_k4(self):
        k4 = PatternGraph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        c4 = square().with_partial_order(())
        assert count_monomorphisms(c4, k4) == 24  # every permutation works

    def test_no_embedding_when_denser(self):
        k4 = PatternGraph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        c4 = square().with_partial_order(())
        assert count_monomorphisms(k4, c4) == 0

    def test_size_mismatch_rejected(self):
        with pytest.raises(PatternError):
            count_monomorphisms(triangle(), square())

    def test_instances_within(self):
        k4 = PatternGraph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        c4 = square().with_partial_order(())
        assert instances_within(c4, k4) == 3  # K4 contains 3 squares


class TestConversionMatrix:
    @pytest.mark.parametrize("k", [3, 4])
    def test_upper_triangular_unit_diagonal(self, k):
        matrix = conversion_matrix(k)
        for i, row in enumerate(matrix):
            assert row[i] == 1
            for j in range(i):
                assert row[j] == 0


class TestInducedCensus:
    @pytest.mark.parametrize("k", [3, 4])
    def test_matches_brute_force_er(self, k):
        g = erdos_renyi(20, 0.25, seed=41)
        assert induced_census(g, k, num_workers=3) == brute_induced(g, k)

    def test_matches_brute_force_grid(self):
        g = grid_graph(4, 4)
        assert induced_census(g, 4, num_workers=3) == brute_induced(g, 4)

    def test_complete_graph_only_cliques(self):
        census = induced_census(complete_graph(6), 4, num_workers=2)
        clique_name = all_connected_patterns(4)[-1].name
        assert census[clique_name] == 15  # C(6,4)
        assert all(v == 0 for name, v in census.items() if name != clique_name)

    def test_cycle_graph_only_paths(self):
        census = induced_census(cycle_graph(8), 3, num_workers=2)
        # every connected 3-subset of C8 induces a path, none a triangle
        path_name, triangle_name = (p.name for p in all_connected_patterns(3))
        assert census[path_name] == 8
        assert census[triangle_name] == 0

    def test_missing_motif_rejected(self):
        with pytest.raises(PatternError):
            induced_from_noninduced({"M3.1": 5}, 3)

    def test_inconsistent_census_rejected(self):
        motifs = all_connected_patterns(3)
        bogus = {motifs[0].name: 0, motifs[1].name: 10}
        # 10 triangles imply 30 non-induced paths; claiming 0 is impossible
        with pytest.raises(PatternError):
            induced_from_noninduced(bogus, 3)

    def test_sum_rule(self):
        """Induced counts partition the connected k-subsets: their sum
        equals the brute-force number of connected subsets."""
        g = erdos_renyi(18, 0.3, seed=42)
        census = induced_census(g, 4, num_workers=2)
        assert sum(census.values()) == sum(brute_induced(g, 4).values())
