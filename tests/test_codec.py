"""Unit and property tests for the Gpsi wire codec."""

import pytest
from hypothesis import given, strategies as st

from repro.core import CodecError, Gpsi, UNMAPPED, decode_gpsi, encode_gpsi, encoded_size


class TestRoundTrip:
    def test_initial_gpsi(self):
        from repro.pattern import square

        g = Gpsi.initial(square(), 0, 42)
        assert decode_gpsi(encode_gpsi(g)) == g

    def test_partial_gpsi(self):
        g = Gpsi((5, UNMAPPED, 1_000_000, 0), 0b1001, 3)
        assert decode_gpsi(encode_gpsi(g)) == g

    def test_unset_next_vertex(self):
        g = Gpsi((7, 8), 0b01, -1)
        decoded = decode_gpsi(encode_gpsi(g))
        assert decoded.next_vertex == -1

    def test_size_small_for_small_ids(self):
        g = Gpsi((1, 2, 3, 4, 5), 0b00111, 4)
        assert encoded_size(g) <= 8  # header 2 + mask 1 + 5 single-byte cells

    def test_size_grows_with_large_ids(self):
        small = Gpsi((1, 2), 0, 0)
        big = Gpsi((2**40, 2**40 + 1), 0, 0)
        assert encoded_size(big) > encoded_size(small)

    @given(
        st.lists(
            st.one_of(st.just(UNMAPPED), st.integers(min_value=0, max_value=2**48)),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0),
        st.integers(min_value=-1, max_value=7),
    )
    def test_roundtrip_property(self, mapping, black_seed, next_vertex):
        k = len(mapping)
        # black may only cover mapped cells; mask the seed accordingly
        black = 0
        for vp in range(k):
            if mapping[vp] != UNMAPPED and black_seed >> vp & 1:
                black |= 1 << vp
        next_vertex = min(next_vertex, k - 1)
        g = Gpsi(tuple(mapping), black, next_vertex)
        assert decode_gpsi(encode_gpsi(g)) == g


class TestValidation:
    def test_truncated_header(self):
        with pytest.raises(CodecError):
            decode_gpsi(b"\x03")

    def test_truncated_varint(self):
        g = Gpsi((1, 2, 3), 0, 0)
        data = encode_gpsi(g)
        with pytest.raises(CodecError):
            decode_gpsi(data[:-1])

    def test_trailing_garbage(self):
        data = encode_gpsi(Gpsi((1,), 0, 0)) + b"\x00"
        with pytest.raises(CodecError):
            decode_gpsi(data)

    def test_next_vertex_out_of_range(self):
        data = bytearray(encode_gpsi(Gpsi((1, 2), 0, 0)))
        data[1] = 9  # |Vp| is 2
        with pytest.raises(CodecError):
            decode_gpsi(bytes(data))

    def test_black_mask_too_wide(self):
        data = bytearray(encode_gpsi(Gpsi((1,), 0, 0)))
        data[2] = 0b10  # bit 1 for a 1-vertex pattern
        with pytest.raises(CodecError):
            decode_gpsi(bytes(data))

    def test_black_unmapped_inconsistency(self):
        # hand-craft: k=1, next=0, black=1, mapping cell 0 (unmapped)
        with pytest.raises(CodecError):
            decode_gpsi(bytes([1, 0, 1, 0]))

    def test_negative_varint_rejected_at_encode(self):
        from repro.core.codec import _write_varint

        with pytest.raises(CodecError):
            _write_varint(-1, bytearray())
