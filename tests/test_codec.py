"""Unit and property tests for the Gpsi wire codec (scalar and batch)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CodecError,
    Gpsi,
    GpsiColumns,
    UNMAPPED,
    decode_batch,
    decode_columns,
    decode_gpsi,
    encode_batch,
    encode_columns,
    encode_gpsi,
    encoded_size,
    encoded_size_batch,
    pack_gpsis,
    unpack_gpsis,
)
from repro.core.codec import batch_encoded_size


@st.composite
def valid_gpsis(draw, k=None, max_id=2**48):
    """Structurally valid Gpsis: black only on mapped cells, next in range."""
    if k is None:
        k = draw(st.integers(min_value=1, max_value=8))
    mapping = draw(
        st.lists(
            st.one_of(st.just(UNMAPPED), st.integers(min_value=0, max_value=max_id)),
            min_size=k,
            max_size=k,
        )
    )
    black_seed = draw(st.integers(min_value=0))
    black = 0
    for vp in range(k):
        if mapping[vp] != UNMAPPED and black_seed >> vp & 1:
            black |= 1 << vp
    next_vertex = draw(st.integers(min_value=-1, max_value=k - 1))
    return Gpsi(tuple(mapping), black, next_vertex)


@st.composite
def gpsi_batches(draw):
    """(gpsis, k) with every instance sharing one pattern size."""
    k = draw(st.integers(min_value=1, max_value=6))
    gpsis = draw(st.lists(valid_gpsis(k=k), min_size=0, max_size=12))
    return gpsis, k


class TestRoundTrip:
    def test_initial_gpsi(self):
        from repro.pattern import square

        g = Gpsi.initial(square(), 0, 42)
        assert decode_gpsi(encode_gpsi(g)) == g

    def test_partial_gpsi(self):
        g = Gpsi((5, UNMAPPED, 1_000_000, 0), 0b1001, 3)
        assert decode_gpsi(encode_gpsi(g)) == g

    def test_unset_next_vertex(self):
        g = Gpsi((7, 8), 0b01, -1)
        decoded = decode_gpsi(encode_gpsi(g))
        assert decoded.next_vertex == -1

    def test_size_small_for_small_ids(self):
        g = Gpsi((1, 2, 3, 4, 5), 0b00111, 4)
        assert encoded_size(g) <= 8  # header 2 + mask 1 + 5 single-byte cells

    def test_size_grows_with_large_ids(self):
        small = Gpsi((1, 2), 0, 0)
        big = Gpsi((2**40, 2**40 + 1), 0, 0)
        assert encoded_size(big) > encoded_size(small)

    @given(
        st.lists(
            st.one_of(st.just(UNMAPPED), st.integers(min_value=0, max_value=2**48)),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0),
        st.integers(min_value=-1, max_value=7),
    )
    def test_roundtrip_property(self, mapping, black_seed, next_vertex):
        k = len(mapping)
        # black may only cover mapped cells; mask the seed accordingly
        black = 0
        for vp in range(k):
            if mapping[vp] != UNMAPPED and black_seed >> vp & 1:
                black |= 1 << vp
        next_vertex = min(next_vertex, k - 1)
        g = Gpsi(tuple(mapping), black, next_vertex)
        assert decode_gpsi(encode_gpsi(g)) == g


class TestValidation:
    def test_truncated_header(self):
        with pytest.raises(CodecError):
            decode_gpsi(b"\x03")

    def test_truncated_varint(self):
        g = Gpsi((1, 2, 3), 0, 0)
        data = encode_gpsi(g)
        with pytest.raises(CodecError):
            decode_gpsi(data[:-1])

    def test_trailing_garbage(self):
        data = encode_gpsi(Gpsi((1,), 0, 0)) + b"\x00"
        with pytest.raises(CodecError):
            decode_gpsi(data)

    def test_next_vertex_out_of_range(self):
        data = bytearray(encode_gpsi(Gpsi((1, 2), 0, 0)))
        data[1] = 9  # |Vp| is 2
        with pytest.raises(CodecError):
            decode_gpsi(bytes(data))

    def test_black_mask_too_wide(self):
        data = bytearray(encode_gpsi(Gpsi((1,), 0, 0)))
        data[2] = 0b10  # bit 1 for a 1-vertex pattern
        with pytest.raises(CodecError):
            decode_gpsi(bytes(data))

    def test_black_unmapped_inconsistency(self):
        # hand-craft: k=1, next=0, black=1, mapping cell 0 (unmapped)
        with pytest.raises(CodecError):
            decode_gpsi(bytes([1, 0, 1, 0]))

    def test_negative_varint_rejected_at_encode(self):
        from repro.core.codec import _write_varint

        with pytest.raises(CodecError):
            _write_varint(-1, bytearray())


class TestEncodedSizeArithmetic:
    """``encoded_size`` computes the wire length without materialising
    bytes; it must agree with the actual encoder on every valid Gpsi."""

    @given(valid_gpsis())
    def test_matches_real_encoding(self, gpsi):
        assert encoded_size(gpsi) == len(encode_gpsi(gpsi))

    def test_varint_boundaries(self):
        # 0x7E is the last id whose +1 shift still fits one varint byte.
        for vd in (0, 0x7E, 0x7F, 0x80, 2**14 - 2, 2**14 - 1, 2**40):
            g = Gpsi((vd, UNMAPPED), 0b01, 0)
            assert encoded_size(g) == len(encode_gpsi(g))


class TestBatchRoundTrip:
    def test_empty_batch(self):
        data = encode_batch([], k=4)
        assert decode_batch(data) == []
        assert len(data) == batch_encoded_size(0, 4)

    def test_empty_pack_requires_k(self):
        with pytest.raises(ValueError):
            pack_gpsis([])

    def test_one_vertex_pattern(self):
        gpsis = [Gpsi((7,), 0b1, 0), Gpsi((UNMAPPED,), 0, -1)]
        assert decode_batch(encode_batch(gpsis)) == gpsis

    def test_unmapped_cells_and_unset_next(self):
        gpsis = [
            Gpsi((5, UNMAPPED, 1_000_000, 0), 0b1001, 3),
            Gpsi((UNMAPPED, UNMAPPED, UNMAPPED, 2), 0, -1),
        ]
        assert decode_batch(encode_batch(gpsis)) == gpsis

    def test_wide_pattern_multiword_black(self):
        # 0xFE vertices — the codec's ceiling; black spans 8 mask words.
        k = 0xFE
        mapping = tuple(range(k))
        black = (1 << k) - 1
        gpsis = [Gpsi(mapping, black, k - 1), Gpsi(mapping, 1 << 200, -1)]
        assert decode_batch(encode_batch(gpsis)) == gpsis

    def test_pattern_too_large_rejected(self):
        g = Gpsi(tuple(range(0xFF)), 0, 0)
        with pytest.raises(CodecError):
            encode_batch([g])

    @given(gpsi_batches())
    def test_roundtrip_property(self, batch):
        gpsis, k = batch
        assert decode_batch(encode_batch(gpsis, k)) == gpsis

    @given(gpsi_batches())
    def test_pack_unpack_property(self, batch):
        gpsis, k = batch
        assert unpack_gpsis(pack_gpsis(gpsis, k)) == gpsis

    @given(gpsi_batches())
    def test_encoded_size_batch_matches_scalar_sum(self, batch):
        gpsis, k = batch
        columns = pack_gpsis(gpsis, k)
        assert encoded_size_batch(columns) == sum(encoded_size(g) for g in gpsis)

    def test_encoded_size_batch_multiword(self):
        k = 40  # two mask words: exercises the scalar fallback
        gpsis = [
            Gpsi(tuple(range(k)), (1 << k) - 1, 0),
            Gpsi((UNMAPPED,) * k, 0, -1),
        ]
        columns = pack_gpsis(gpsis)
        assert encoded_size_batch(columns) == sum(encoded_size(g) for g in gpsis)

    @given(gpsi_batches())
    def test_batch_encoded_size_is_exact(self, batch):
        gpsis, k = batch
        columns = pack_gpsis(gpsis, k)
        assert len(encode_columns(columns)) == batch_encoded_size(len(gpsis), k)

    @given(gpsi_batches())
    def test_encoded_size_batch_independent_of_next(self, batch):
        """The batched expansion path accounts ``message_bytes`` with one
        ``encoded_size_batch`` call on the addressed child columns; the
        scalar path sums ``encoded_size`` per addressed child.  Byte
        parity holds for every addressing because the codec's next-vertex
        field is fixed-width — re-addressing rows never changes the
        accounted volume."""
        gpsis, k = batch
        columns = pack_gpsis(gpsis, k)
        base = encoded_size_batch(columns)
        readdressed = pack_gpsis([g.with_next(k - 1) for g in gpsis], k)
        assert encoded_size_batch(readdressed) == base
        assert base == sum(
            encoded_size(g.with_next(k - 1)) for g in gpsis
        )

    @given(st.lists(valid_gpsis(k=4, max_id=500), min_size=1, max_size=30))
    def test_columnar_vs_scalar_bytes_per_gpsi(self, gpsis):
        """Cross-check the two planes' wire volume on random Gpsis: the
        columnar format is fixed-width (8k + 4*words + 1 per instance plus
        one 8-byte header per batch), the scalar codec varint-compressed;
        for small ids scalar stays below fixed-width, and both accountings
        must be internally exact."""
        columns = pack_gpsis(gpsis)
        n, k = len(gpsis), 4
        columnar = batch_encoded_size(n, k)
        scalar = encoded_size_batch(columns)
        assert columnar == 8 + n * (8 * k + 4 + 1)
        assert scalar == sum(len(encode_gpsi(g)) for g in gpsis)
        assert scalar <= columnar


class TestBatchValidation:
    def _data(self):
        return bytearray(
            encode_batch([Gpsi((3, UNMAPPED), 0b01, 1), Gpsi((4, 5), 0b11, -1)])
        )

    def test_truncated_header(self):
        with pytest.raises(CodecError):
            decode_columns(b"GC\x01")

    def test_bad_magic(self):
        data = self._data()
        data[0] = ord("X")
        with pytest.raises(CodecError):
            decode_columns(bytes(data))

    def test_bad_version(self):
        data = self._data()
        data[2] = 99
        with pytest.raises(CodecError):
            decode_columns(bytes(data))

    def test_length_mismatch(self):
        data = self._data()
        with pytest.raises(CodecError):
            decode_columns(bytes(data[:-1]))
        with pytest.raises(CodecError):
            decode_columns(bytes(data) + b"\x00")

    def test_next_vertex_out_of_range(self):
        columns = GpsiColumns(
            np.array([[1, 2]], dtype=np.int64),
            np.array([[0]], dtype=np.uint32),
            np.array([2], dtype=np.uint8),  # |Vp| is 2, 0xFF would be unset
        )
        with pytest.raises(CodecError):
            decode_columns(encode_columns(columns))

    def test_mapping_below_unmapped(self):
        columns = GpsiColumns(
            np.array([[-2, 0]], dtype=np.int64),
            np.array([[0]], dtype=np.uint32),
            np.array([0], dtype=np.uint8),
        )
        with pytest.raises(CodecError):
            decode_columns(encode_columns(columns))

    def test_black_mask_too_wide(self):
        columns = GpsiColumns(
            np.array([[1, 2]], dtype=np.int64),
            np.array([[0b100]], dtype=np.uint32),  # bit 2 for |Vp|=2
            np.array([0], dtype=np.uint8),
        )
        with pytest.raises(CodecError):
            decode_columns(encode_columns(columns))

    def test_black_unmapped_inconsistency(self):
        columns = GpsiColumns(
            np.array([[UNMAPPED, 2]], dtype=np.int64),
            np.array([[0b01]], dtype=np.uint32),  # BLACK v1 but unmapped
            np.array([1], dtype=np.uint8),
        )
        with pytest.raises(CodecError):
            decode_columns(encode_columns(columns))
